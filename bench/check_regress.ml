(* Bench regression gate: compare a freshly generated BENCH_core.json
   against the committed baseline and fail (exit 1) when any throughput
   metric dropped by more than the allowed fraction.

       check_regress [--threshold 0.30] BASELINE.json FRESH.json

   Throughput metrics gated (higher is better):
     engine.events_per_sec
     lookups_per_sec[].per_sec        (keyed by strategy)
     updates_per_sec[].per_sec        (keyed by strategy)
     day_runs_per_sec[].per_sec       (BENCH_day.json)
     cached_lookups_per_sec[].per_sec (BENCH_cache.json raw cache ops)
     cache[].hit_rate                 (BENCH_cache.json, per strategy)
     shard_events_per_sec[].per_sec   (BENCH_parallel.json, keyed
                                       "n=SIZE w=WORKERS")
     instrumentation.*_per_sec_*      (when present in both files)

   Tail-latency metrics gated (lower is better — a GROWTH beyond the
   threshold fails):
     tail_ms[].p99_ms / .p999_ms      (BENCH_day.json crowd-window
                                       tails, keyed by strategy/mode)
     cache[].msgs_per_lookup          (BENCH_cache.json: data-plane
     cache[].p99_cached_ms             traffic and crowd tail of the
                                       tuned+cache day cell)

   Wall-clock and speedup fields are reported for context but not
   gated — they measure the CI machine as much as the code.  Metrics
   present in only one file are reported and skipped, so the gate
   tolerates baseline refreshes that add or drop rows — but silently:
   a fresh run that stopped producing most of its metrics (a renamed
   JSON key, a benchmark that bailed early) used to sail through as
   all-"gone".  Skipped baseline metrics are therefore summarised at
   the end, and the gate fails when more than --max-missing (a
   fraction, default 0.5) of them vanished.  Smoke runs legitimately
   drop the large-n rows of the scale and parallel sweeps, which stays
   under the default; wholesale disappearance does not.

   Absolute hit-rate floor: every cache[].hit_rate must clear 40% in
   both files — the claim that the cache absorbs the flash crowd is an
   absolute one, and the day simulation behind it is deterministic, so
   no noise headroom is needed.

   Absolute overhead gate: always-on tracing must cost less than 10%
   (ROADMAP target), on both posted net sends and service updates at
   sample=1.0.  The committed baseline is held to the strict bound —
   it is the claim the repo makes — while the fresh run gets 2x
   headroom (shared CI runners add several points of scheduler and
   page-placement noise to a percentage whose true value is ~3-4%);
   a genuine emit-path regression still trips either the doubled
   absolute bound or the relative band on the tracing-on rate.

   The parser below is a minimal JSON reader (objects, arrays, strings,
   numbers, booleans, null) — the container deliberately has no JSON
   library, and BENCH_core.json is machine-written by bench/main.ml. *)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            (* Benchmark names are ASCII; decode the code point bluntly. *)
            if !pos + 4 > len then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
            in
            if code < 128 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_char buf '?'
          | _ -> fail "unknown escape");
          go ())
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (elements [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let num_opt = function Some (Num f) -> Some f | _ -> None

let str_opt = function Some (Str s) -> Some s | _ -> None

(* ------------------------------------------------------------------ *)
(* Metric extraction: a flat (name, value, direction) list.  [Higher]
   metrics fail when they DROP past the threshold; [Lower] metrics
   (latency tails) fail when they GROW past it.                        *)

type direction =
  | Higher
  | Lower

let throughput_metrics json =
  let out = ref [] in
  let push ?(dir = Higher) name v = out := (name, v, dir) :: !out in
  (match num_opt (Option.bind (member "engine" json) (member "events_per_sec")) with
  | Some v -> push "engine.events_per_sec" v
  | None -> ());
  let rate_array field =
    match member field json with
    | Some (List rows) ->
      List.iter
        (fun row ->
          match (str_opt (member "strategy" row), num_opt (member "per_sec" row)) with
          | Some name, Some v -> push (Printf.sprintf "%s.%s" field name) v
          | _ -> ())
        rows
    | _ -> ()
  in
  rate_array "lookups_per_sec";
  rate_array "updates_per_sec";
  (* BENCH_scale.json rows ("Strategy@n=SIZE" keys) gate through the
     same shape. *)
  rate_array "placements_per_sec";
  (* BENCH_day.json: one simulated-day throughput row... *)
  rate_array "day_runs_per_sec";
  (* BENCH_cache.json: raw Client_cache operation rates... *)
  rate_array "cached_lookups_per_sec";
  (* BENCH_parallel.json: domain-sharded simulation events/s, keyed
     "n=SIZE w=WORKERS".  The w=1 rows gate the windowed driver's
     sequential overhead; the w>1 rows gate the parallel path itself. *)
  rate_array "shard_events_per_sec";
  (* ...and the tuned+cache day cell per strategy: hit rate must not
     drop, data-plane traffic and the crowd tail must not grow. *)
  (match member "cache" json with
  | Some (List rows) ->
    List.iter
      (fun row ->
        match str_opt (member "strategy" row) with
        | Some name ->
          (match num_opt (member "hit_rate" row) with
          | Some v -> push (Printf.sprintf "cache.%s.hit_rate" name) v
          | None -> ());
          List.iter
            (fun field ->
              match num_opt (member field row) with
              | Some v -> push ~dir:Lower (Printf.sprintf "cache.%s.%s" name field) v
              | None -> ())
            [ "msgs_per_lookup"; "p99_cached_ms" ]
        | None -> ())
      rows
  | _ -> ());
  (* ...and per-strategy/mode crowd-window tails, gated lower-is-better
     so a shedding/hedging/breaker regression reads as a fatter tail. *)
  (match member "tail_ms" json with
  | Some (List rows) ->
    List.iter
      (fun row ->
        match str_opt (member "strategy" row) with
        | Some name ->
          List.iter
            (fun field ->
              match num_opt (member field row) with
              | Some v -> push ~dir:Lower (Printf.sprintf "tail_ms.%s.%s" name field) v
              | None -> ())
            [ "p99_ms"; "p999_ms" ]
        | None -> ())
      rows
  | _ -> ());
  (match member "instrumentation" json with
  | Some (Obj fields) ->
    List.iter
      (fun (key, v) ->
        match v with
        | Num f ->
          (* Only the rates; counts and percentages are not throughput. *)
          let is_rate =
            let needle = "_per_sec" in
            let rec search i =
              i + String.length needle <= String.length key
              && (String.sub key i (String.length needle) = needle || search (i + 1))
            in
            search 0
          in
          if is_rate then push (Printf.sprintf "instrumentation.%s" key) f
        | _ -> ())
      fields
  | _ -> ());
  List.rev !out

(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let threshold = ref 0.30 in
  let max_missing = ref 0.5 in
  let paths = ref [] in
  Arg.parse
    [ ( "--threshold",
        Arg.Set_float threshold,
        "FRACTION maximum tolerated throughput drop (default 0.30)" );
      ( "--max-missing",
        Arg.Set_float max_missing,
        "FRACTION maximum fraction of baseline metrics allowed to be missing from \
         the fresh run (default 0.5)" ) ]
    (fun p -> paths := p :: !paths)
    "check_regress [--threshold F] [--max-missing F] BASELINE.json FRESH.json";
  let baseline_path, fresh_path =
    match List.rev !paths with
    | [ b; f ] -> (b, f)
    | _ ->
      prerr_endline "usage: check_regress [--threshold F] BASELINE.json FRESH.json";
      exit 2
  in
  let load path =
    match parse_json (read_file path) with
    | json -> json
    | exception Parse_error msg ->
      Printf.eprintf "%s: %s\n" path msg;
      exit 2
    | exception Sys_error msg ->
      prerr_endline msg;
      exit 2
  in
  let baseline_json = load baseline_path in
  let fresh_json = load fresh_path in
  let baseline = throughput_metrics baseline_json in
  let fresh = throughput_metrics fresh_json in
  Printf.printf
    "bench gate: %s -> %s (throughput fails below -%.0f%%, tails fail above +%.0f%%)\n\n"
    baseline_path fresh_path (100. *. !threshold) (100. *. !threshold);
  Printf.printf "  %-48s %14s %14s %9s\n" "metric" "baseline" "fresh" "delta %";
  let failures = ref 0 in
  let missing = ref [] in
  let lookup name rows =
    List.find_map (fun (n, v, _) -> if n = name then Some v else None) rows
  in
  List.iter
    (fun (name, base, dir) ->
      match lookup name fresh with
      | None ->
        missing := name :: !missing;
        Printf.printf "  %-48s %14.0f %14s %9s\n" name base "-" "gone"
      | Some now ->
        let delta = if base > 0. then 100. *. ((now /. base) -. 1.) else 0. in
        let verdict =
          match dir with
          | Higher -> delta < -100. *. !threshold
          | Lower -> delta > 100. *. !threshold
        in
        if verdict then incr failures;
        Printf.printf "  %-48s %14.0f %14.0f %+8.1f%%%s\n" name base now delta
          (if verdict then "  << REGRESSION" else ""))
    baseline;
  List.iter
    (fun (name, now, _) ->
      if lookup name baseline = None then
        Printf.printf "  %-48s %14s %14.0f %9s\n" name "-" now "new")
    fresh;
  (* Absolute always-on overhead gate (see header): strict bound on the
     committed baseline, doubled for the fresh run's runner noise. *)
  let check_overhead label json limit =
    match member "instrumentation" json with
    | None -> ()
    | Some inst ->
      List.iter
        (fun field ->
          match num_opt (member field inst) with
          | Some v ->
            let bad = v >= limit in
            if bad then incr failures;
            Printf.printf "  %-48s %14s %14.2f %9s%s\n"
              (Printf.sprintf "%s.%s" label field)
              (Printf.sprintf "< %.0f%%" limit) v ""
              (if bad then "  << OVERHEAD" else "")
          | None -> ())
        [ "overhead_tracing_on_pct"; "service_overhead_tracing_on_pct" ]
  in
  check_overhead "baseline" baseline_json 10.;
  check_overhead "fresh" fresh_json 20.;
  (* Absolute hit-rate floor (see header): the cache must keep
     absorbing the crowd, not merely regress slower than 30%. *)
  let check_hit_floor label json floor =
    match member "cache" json with
    | Some (List rows) ->
      List.iter
        (fun row ->
          match (str_opt (member "strategy" row), num_opt (member "hit_rate" row)) with
          | Some name, Some v ->
            let bad = v < floor in
            if bad then incr failures;
            Printf.printf "  %-48s %14s %14.2f %9s%s\n"
              (Printf.sprintf "%s.cache.%s.hit_rate" label name)
              (Printf.sprintf ">= %.0f%%" floor)
              v ""
              (if bad then "  << HIT-RATE FLOOR" else "")
          | _ -> ())
        rows
    | _ -> ()
  in
  check_hit_floor "baseline" baseline_json 40.;
  check_hit_floor "fresh" fresh_json 40.;
  (* Skipped-metric gate (see header): each "gone" row above was a
     baseline metric the fresh run never produced, so it was compared
     against nothing.  A bounded number of them is routine (smoke runs
     drop the large-n sweep rows); most of the file vanishing means the
     fresh run is not measuring what the baseline measured, and the
     comparison above proved nothing. *)
  let gone = List.rev !missing in
  let total = List.length baseline in
  (match gone with
  | [] -> ()
  | _ ->
    let frac = float_of_int (List.length gone) /. float_of_int (max 1 total) in
    Printf.printf "\n  skipped (in baseline, missing from fresh): %d of %d metric(s) \
                   (%.0f%%, limit %.0f%%)\n"
      (List.length gone) total (100. *. frac) (100. *. !max_missing);
    List.iter (fun name -> Printf.printf "    - %s\n" name) gone;
    if frac > !max_missing then begin
      incr failures;
      Printf.printf "  << MISSING: the fresh run lost %.0f%% of the baseline's metrics \
                     (--max-missing %.2f)\n"
        (100. *. frac) !max_missing
    end);
  print_newline ();
  if !failures > 0 then begin
    Printf.printf
      "FAIL: %d check(s) failed — a metric regressed more than %.0f%%, broke an \
       absolute gate, or too many baseline metrics went missing\n"
      !failures (100. *. !threshold);
    exit 1
  end
  else print_endline "OK: no gated metric regressed beyond the threshold"
