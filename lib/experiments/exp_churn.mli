(** Extension: self-healing under continuous server churn.

    Servers fail and recover as alternating renewal processes
    (exponential MTTF/MTTR); clients keep issuing partial lookups
    throughout while a steady-state update stream deletes one random
    live entry and adds a fresh one every [update_every] time units —
    so a recovering server that missed updates serves stale reads and
    hides adds until it is repaired.

    Each strategy runs twice, with repair off and with the context's
    repair configuration (default {!Plookup.Repair.default_config}),
    and reports: lookup success rate counting only {e live} entries,
    stale reads (deleted entries returned), the fraction of samples in
    which the whole system covered fewer than [t] live entries, mean
    lookup cost, mean time-to-restore-degree, and the repair message
    overhead (tallied separately from the lookup/update cost). *)

val id : string
val title : string

val run :
  ?n:int ->
  ?h:int ->
  ?budget:int ->
  ?t:int ->
  ?mttf:float ->
  ?mttr:float ->
  ?horizon:float ->
  ?update_every:float ->
  Ctx.t ->
  Plookup_util.Table.t
(** Defaults: n=10, h=100, budget 200 (Fixed gets x = t+5 instead —
    it cannot play otherwise), t=40, mttf=mttr=50 (harsh: each server
    50% available), horizon 5000 time units with one lookup per time
    unit and one delete+add every 10.  The context's [mttf]/[mttr]/
    [horizon]/[repair] fields override the corresponding defaults. *)
