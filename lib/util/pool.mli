(** A fixed-size, work-stealing-free parallel map.

    [Pool] is the single concurrency primitive of the repo: experiments
    hand it an array of independent replicate descriptions and get the
    results back {e in input order}, so aggregation code never observes
    completion order and every caller is deterministic at any [jobs]
    value (see DESIGN.md, "Performance").

    Two implementations exist, selected at build time by dune
    [enabled_if] on the compiler version: on OCaml >= 5.0 workers are
    stdlib [Domain]s pulling indices from an atomic counter; on 4.x the
    fallback maps sequentially in the calling thread.  Both present
    exactly this interface and both raise the exception of the
    lowest-index failing element, so behaviour (results, exceptions,
    everything but wall-clock) is identical across compilers and job
    counts. *)

val parallel_available : bool
(** [true] when this build runs workers on real [Domain]s (OCaml 5+),
    [false] for the sequential fallback. *)

val recommended_jobs : unit -> int
(** A sensible default worker count: the runtime's recommended domain
    count on OCaml 5 (usually the core count), [1] for the fallback. *)

module Gang : sig
  (** A gang of long-lived workers for repeated barrier-synchronized
      steps.

      [Pool.map] spawns and joins a fresh domain per call, which is fine
      for replicate fan-out (milliseconds of work per element) but far
      too expensive for the sharded simulation driver, which needs a
      barrier every lookahead window — often tens of thousands of times
      per run.  A [Gang.t] spawns its domains once at [create] and
      parks them on a condition variable between steps, so each [run]
      costs two lock round-trips per worker instead of a domain spawn.

      Like [Pool.map], the gang has a sequential twin on OCaml 4.x:
      [create] succeeds at any [workers] value, [run] executes the body
      for every worker index in ascending order in the calling thread,
      and exception behaviour is identical.  Callers therefore never
      need to branch on [parallel_available]. *)

  type t

  val create : workers:int -> t
  (** [create ~workers] spawns a gang of [workers] workers (the calling
      domain acts as worker [0]; [workers - 1] domains are spawned on
      OCaml 5, none on 4.x).  Raises [Invalid_argument] if
      [workers < 1].  Call [shutdown] when done; an un-shut-down gang
      keeps its domains parked forever. *)

  val size : t -> int
  (** Number of workers, as passed to [create]. *)

  val run : t -> (int -> unit) -> unit
  (** [run t body] executes [body w] once for every worker index
      [w] in [0 .. size t - 1], worker [w] always executing on the same
      domain across calls, and returns once {e all} of them have
      finished (a full barrier).  [body] must only touch state owned by
      its worker index.  If one or more bodies raise, every body still
      runs to completion and the exception of the lowest failing worker
      index is re-raised.  Raises [Invalid_argument] after
      [shutdown]. *)

  val shutdown : t -> unit
  (** Terminates and joins the gang's domains.  Idempotent. *)
end

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f arr] is [Array.map f arr] computed by up to [jobs]
    workers.  Results are returned in input order regardless of
    completion order.  [f] must not touch shared mutable state (every
    call site passes a self-contained replicate closure).

    [jobs <= 1], singleton and empty arrays short-circuit to a plain
    sequential map in the calling domain.

    If one or more applications of [f] raise, every element still runs
    to completion and the exception of the {e lowest} failing index is
    re-raised — the same exception a sequential [Array.map] would have
    produced first. *)
