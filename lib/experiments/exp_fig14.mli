(** Figure 14: total update overhead (messages received by servers) for
    Fixed-50 vs Hash-y over 20000 updates, as the steady-state entry
    count h sweeps 100..400 with target answer size 40.

    Fixed-x's cost falls like 1 + (x/h)*n per update (fewer updates
    touch the tracked subset as h grows); Hash-y's cost is 1 + y per
    update with y = ceil(t*n/h) stepping down at h = 134, 200, 400 — the
    two curves cross near (x/h)*n = y. *)

val id : string
val title : string

val run :
  ?n:int ->
  ?t:int ->
  ?x:int ->
  ?entry_counts:int list ->
  ?updates:int ->
  Ctx.t ->
  Plookup_util.Table.t
(** Defaults: n=10, t=40, x=50, h in {100,120,133,150,175,200,250,300,
    350,400}, 20000 updates. *)
