type entry = (module Strategy_intf.S)

let entries : entry list ref = ref []

let meta_of (module S : Strategy_intf.S) = S.meta

let register (module S : Strategy_intf.S) =
  let m = S.meta in
  if m.Strategy_intf.arity < 0 || m.Strategy_intf.arity > 2 then
    invalid_arg (Printf.sprintf "Strategy_registry.register: %s: unsupported arity" m.name);
  if m.Strategy_intf.keys = [] then
    invalid_arg (Printf.sprintf "Strategy_registry.register: %s: no parse keys" m.name);
  List.iter
    (fun (module E : Strategy_intf.S) ->
      if String.lowercase_ascii E.meta.Strategy_intf.name
         = String.lowercase_ascii m.Strategy_intf.name
      then
        invalid_arg
          (Printf.sprintf "Strategy_registry.register: duplicate strategy %s" m.name);
      List.iter
        (fun k ->
          if List.mem k E.meta.Strategy_intf.keys then
            invalid_arg
              (Printf.sprintf "Strategy_registry.register: key %S already taken by %s" k
                 E.meta.Strategy_intf.name))
        m.Strategy_intf.keys)
    !entries;
  entries := (module S : Strategy_intf.S) :: !entries

let all () =
  List.sort
    (fun a b ->
      let ma = meta_of a and mb = meta_of b in
      match compare ma.Strategy_intf.rank mb.Strategy_intf.rank with
      | 0 -> compare ma.Strategy_intf.name mb.Strategy_intf.name
      | c -> c)
    !entries

let find name =
  let lower = String.lowercase_ascii (String.trim name) in
  List.find_opt
    (fun (module S : Strategy_intf.S) ->
      String.lowercase_ascii S.meta.Strategy_intf.name = lower
      || List.mem lower S.meta.Strategy_intf.keys)
    !entries

let find_exn name =
  match find name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Strategy_registry: unknown strategy %S" name)

let mem name = find name <> None

(* The shape a parameterized spelling takes, for error messages and the
   CLI listing: "fixed-X", "round-Y", "roundrobinha-YxK", "full".  The
   placeholder letters come from the "Y = ..., K = ..." convention in
   [param_doc]. *)
let spelling (m : Strategy_intf.meta) =
  let key = List.hd m.keys in
  let letters =
    List.filter_map
      (fun part ->
        let part = String.trim part in
        if String.length part >= 3 && part.[1] = ' ' && part.[2] = '=' then
          Some (String.make 1 part.[0])
        else None)
      (String.split_on_char ',' m.param_doc)
  in
  match (m.arity, letters) with
  | 0, _ -> key
  | 1, l :: _ -> key ^ "-" ^ l
  | 1, [] -> key ^ "-X"
  | _, [ l1; l2 ] -> key ^ "-" ^ l1 ^ "x" ^ l2
  | _, _ -> key ^ "-YxK"

(* Levenshtein distance, for did-you-mean suggestions on typos. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let curr = Array.make (lb + 1) 0 in
  for i = 1 to la do
    curr.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      curr.(j) <- min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit curr 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let suggest key =
  let candidates =
    List.concat_map (fun e -> (meta_of e).Strategy_intf.keys) !entries
  in
  let scored =
    List.filter_map
      (fun k ->
        let d = edit_distance key k in
        if d <= 2 && d < String.length k then Some (d, k) else None)
      candidates
  in
  match List.sort compare scored with (_, best) :: _ -> Some best | [] -> None

let parse_error s key =
  let hint = match suggest key with Some k -> Printf.sprintf " (did you mean %S?)" k | None -> "" in
  let known =
    String.concat ", " (List.map (fun e -> spelling (meta_of e)) (all ()))
  in
  Error (Printf.sprintf "unknown strategy %S%s; known: %s" s hint known)

let parse s =
  let lower = String.lowercase_ascii (String.trim s) in
  let key, raw_params =
    match String.index_opt lower '-' with
    | None -> (lower, [])
    | Some i ->
      ( String.sub lower 0 i,
        String.split_on_char 'x' (String.sub lower (i + 1) (String.length lower - i - 1)) )
  in
  match find key with
  | None -> parse_error s key
  | Some (module S) -> (
    let m = S.meta in
    let params = List.map int_of_string_opt raw_params in
    match (m.Strategy_intf.arity, params) with
    | 0, [] -> Ok (m.Strategy_intf.name, [])
    | 1, [ Some p ] when p > 0 -> Ok (m.Strategy_intf.name, [ p ])
    | 2, [ Some p; Some q ] when p > 0 && q > 0 -> Ok (m.Strategy_intf.name, [ p; q ])
    | _ ->
      Error
        (Printf.sprintf "strategy %S: %s expects the form %s%s" s m.Strategy_intf.name
           (spelling m)
           (if m.Strategy_intf.param_doc = "" then ""
            else " where " ^ m.Strategy_intf.param_doc)))
