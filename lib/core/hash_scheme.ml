open Plookup_store
open Plookup_util
module Net = Plookup_net.Net

type t = { cluster : Cluster.t; y : int }

let hash_server t ~salt e =
  Rng.hash_in_range ~seed:(Cluster.seed t.cluster) ~salt ~value:(Entry.id e)
    (Cluster.n t.cluster)

let servers_of t e =
  let rec go salt acc =
    if salt > t.y then List.rev acc
    else begin
      let s = hash_server t ~salt e in
      go (salt + 1) (if List.mem s acc then acc else s :: acc)
    end
  in
  go 1 []

let send_store t ~src ~dst e =
  ignore (Net.send (Cluster.net t.cluster) ~src:(Net.Server src) ~dst (Msg.store e))

let send_remove t ~src ~dst e =
  ignore (Net.send (Cluster.net t.cluster) ~src:(Net.Server src) ~dst (Msg.remove e))

let handle_data t dst _src (msg : Msg.data) : Msg.reply =
  match msg with
  | Msg.Place _ ->
    (* Distribution is driven from [place] below (budget support); the
       request itself reaches one server. *)
    Msg.Ack
  | Msg.Add e ->
    List.iter (fun s -> send_store t ~src:dst ~dst:s e) (servers_of t e);
    Msg.Ack
  | Msg.Delete e ->
    List.iter (fun s -> send_remove t ~src:dst ~dst:s e) (servers_of t e);
    Msg.Ack
  | Msg.Lookup target -> Strategy_common.lookup_reply t.cluster dst target

let create cluster ~y =
  if y < 1 then invalid_arg "Hash_scheme.create: y must be at least 1";
  let t = { cluster; y } in
  Strategy_common.install cluster ~data:(handle_data t);
  t

let y t = t.y
let cluster t = t.cluster

let place ?budget t entries =
  let entries = Entry.dedup entries in
  match Cluster.random_up_server t.cluster with
  | None -> ()
  | Some s ->
    ignore (Net.send (Cluster.net t.cluster) ~src:Net.Client ~dst:s (Msg.place entries));
    let arr = Array.of_list entries in
    let budget = match budget with None -> max_int | Some b -> b in
    let spent = ref 0 in
    (* Round-major: all first copies before any second copy, so a budget
       cut keeps coverage maximal (Fig. 6's "keep a subset"). *)
    for salt = 1 to t.y do
      Array.iter
        (fun e ->
          if !spent < budget then begin
            let dst = hash_server t ~salt e in
            (* Count the message even when it collides with an earlier
               hash function — the receiver stores at most one copy. *)
            send_store t ~src:s ~dst e;
            incr spent
          end)
        arr
    done

let to_random_server t msg =
  match Cluster.random_up_server t.cluster with
  | None -> ()
  | Some s -> ignore (Net.send (Cluster.net t.cluster) ~src:Net.Client ~dst:s msg)

let add t e = to_random_server t (Msg.add e)
let delete t e = to_random_server t (Msg.delete e)
let partial_lookup ?reachable t target = Probe.random_order ?reachable t.cluster ~t:target

let check_invariants t ~placed =
  let n = Cluster.n t.cluster in
  let expected = Array.init n (fun _ -> Hashtbl.create 16) in
  List.iter
    (fun e ->
      List.iter (fun s -> Hashtbl.replace expected.(s) (Entry.id e) ()) (servers_of t e))
    placed;
  let ok = ref (Ok ()) in
  let fail fmt = Format.kasprintf (fun s -> if !ok = Ok () then ok := Error s) fmt in
  for s = 0 to n - 1 do
    let store = Cluster.store t.cluster s in
    Server_store.iter
      (fun e ->
        if not (Hashtbl.mem expected.(s) (Entry.id e)) then
          fail "server %d stores %s not hashed to it" s (Entry.to_string e))
      store;
    Hashtbl.iter
      (fun id () ->
        if not (Server_store.mem store (Entry.v id)) then
          fail "server %d is missing entry v%d" s id)
      expected.(s)
  done;
  !ok

module Strategy = struct
  type nonrec t = t

  let meta =
    { Strategy_intf.name = "Hash";
      keys = [ "hash" ];
      arity = 1;
      param_doc = "Y = hash functions placing each entry";
      storage_doc = "h*n*(1-(1-1/n)^y)";
      ablation = false;
      rank = 50 }

  let analytic_storage ~n ~h ~params =
    let y = Strategy_common.one_param ~who:"Hash" ~what:"y" params in
    let fn = float_of_int n in
    float_of_int h *. fn *. (1. -. ((1. -. (1. /. fn)) ** float_of_int y))

  let params_for_budget ~n:_ ~h ~total ~params:_ = [ max 1 (total / h) ]

  let create ?resync_stores:_ cluster ~params =
    create cluster ~y:(Strategy_common.one_param ~who:"Hash_scheme.create" ~what:"y" params)

  let place t ?budget entries = place ?budget t entries
  let add = add
  let delete = delete
  let partial_lookup = partial_lookup
  let can_update t = Strategy_common.any_up t.cluster
  let repair_plan t = Strategy_intf.Assigned (fun e -> Some (servers_of t e))
end

let () = Strategy_registry.register (module Strategy)
