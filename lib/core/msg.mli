(** The wire protocol between clients and servers, split into three
    typed planes.

    A strategy is precisely a server-side handler for these messages
    plus a client-side probing discipline, which is how the paper frames
    them (each scheme is given as the behaviour of
    [place]/[add]/[delete]/[partial_lookup] messages).

    {b Data plane} ({!data}): client-originated requests, sent to one
    server.  Every strategy must handle all four — the per-strategy
    totality test in the suite enforces it, and the plane split makes
    each handler exhaustive by construction.

    {b Strategy plane} ({!strategy}): server-to-server messages a
    strategy sends to itself.  A strategy handles its own subset and
    delegates the rest to [Strategy_common.default_strategy], which
    gives the uniform store/remove/replace semantics.

    {b Repair plane} ({!repair}): anti-entropy recovery sync, hinted
    handoff and the degree-repair daemon.  Strategies never see these —
    the {!Repair} subsystem intercepts them before the strategy handler
    runs (and when no repair layer is installed they are acked and
    ignored).

    See PROTOCOL.md for flows, wire-tag ranges and cost accounting. *)

open Plookup_store
open Plookup_util

type hint_kind = H_store | H_remove | H_add_sampled | H_remove_counted
(** Which buffered operation a {!repair} [Hint] replays: the
    point-to-point store/remove of RoundRobin/Hash/Chord, or
    RandomServer's counted sampled-add / counted-remove. *)

(** Client-originated requests; wire tags 1-4. *)
type data =
  | Place of Entry.t list  (** client's initial batch placement request *)
  | Add of Entry.t  (** client add *)
  | Delete of Entry.t  (** client delete *)
  | Lookup of int  (** client partial lookup with target answer size t *)

(** Strategy-internal server-to-server messages; wire tags 5-13. *)
type strategy =
  | Store of Entry.t  (** keep a local copy *)
  | Store_batch of Entry.t list
      (** broadcast payload; receiver decides what to keep (everything,
          the first x, or a random x-subset). *)
  | Remove of Entry.t  (** drop the local copy *)
  | Add_sampled of Entry.t
      (** RandomServer-x incremental add: receiver applies the
          reservoir-sampling coin flip. *)
  | Remove_counted of Entry.t
      (** RandomServer-x delete: receiver decrements its local count of
          system entries and drops any local copy. *)
  | Fetch_candidate of int list
      (** RandomServer-x replacement-on-delete ablation: "send me one
          entry whose id is not in this list". *)
  | Sync_add of Entry.t
      (** RoundRobin coordinator replication (the paper's footnote 1):
          the acting coordinator tells a standby replica to apply an add
          to its copy of the head/tail counters and sequence. *)
  | Sync_delete of Entry.t
      (** Standby-replica mirror of a delete (including the implied
          hole-plugging migration, which each replica re-derives
          deterministically from its own copy). *)
  | Sync_state
      (** State transfer to a just-recovered coordinator replica; the
          receiver copies the sender's ledger. *)

(** Repair-subsystem messages; wire tags 14-18. *)
type repair =
  | Digest_request of Bitset.t
      (** Recovery sync, step 1: a just-recovered server sends a compact
          digest of the entry ids it holds to a live peer. *)
  | Sync_fix of Entry.t list * int list
      (** Recovery sync, step 2: the peer ships the entries the digest
          shows missing and the ids to retract (deleted while the
          recoverer was down, or no longer assigned to it). *)
  | Hint of int * hint_kind * Entry.t
      (** Hinted handoff: an update bound for the down server named by
          the first field, parked on a buddy for replay at recovery. *)
  | Digest_pull
      (** Repair-daemon scan: "reply with a digest of your store". *)
  | Repair_store of Entry.t
      (** Daemon re-replication: store this entry as a substitute copy
          to restore the strategy's replication degree. *)

type t = Data of data | Strategy of strategy | Repair of repair

type reply =
  | Ack
  | Entries of Entry.t list  (** lookup answer *)
  | Candidate of Entry.t option  (** reply to [Fetch_candidate] *)
  | Digest of Bitset.t  (** reply to [Digest_pull] *)
  | Busy
      (** load-shed fast nack: the destination's inbox queue was full, so
          the request was rejected {e without} being processed.  Emitted
          by the {!Plookup_net.Net} capacity model, never by a strategy
          handler; clients treat it as an immediate failure signal and move to
          the next candidate rather than waiting out a timeout. *)

(** {1 Smart constructors}

    Send sites say [Msg.store e] instead of spelling out the plane
    wrapper. *)

val place : Entry.t list -> t
val add : Entry.t -> t
val delete : Entry.t -> t
val lookup : int -> t
val store : Entry.t -> t
val store_batch : Entry.t list -> t
val remove : Entry.t -> t
val add_sampled : Entry.t -> t
val remove_counted : Entry.t -> t
val fetch_candidate : int list -> t
val sync_add : Entry.t -> t
val sync_delete : Entry.t -> t
val sync_state : t
val digest_request : Bitset.t -> t
val sync_fix : Entry.t list -> int list -> t
val hint : target:int -> hint_kind -> Entry.t -> t
val digest_pull : t
val repair_store : Entry.t -> t

val plane_name : t -> string
(** ["data"], ["strategy"] or ["repair"]. *)

val plane_names : string array
(** [[| "data"; "strategy"; "repair" |]], indexed by {!plane_index} —
    the [names] a {!Plookup_net.Net.set_planes} call wants. *)

val plane_index : t -> int
(** 0 for data, 1 for strategy, 2 for repair. *)

val label : t -> string
(** The message's short wire name (e.g. ["lookup"], ["store_batch"],
    ["digest_pull"]) — constant per constructor, used as the [msg] field
    of trace spans. *)

val trace_coder : Plookup_obs.Trace.t -> t -> int
(** [trace_coder tr] interns every plane/label pair into [tr] once and
    returns the packed-code function {!Plookup_net.Net.set_trace}'s
    [coder] wants — the coded replacement for
    [(plane_name m, label m)]. *)

val hint_kind_name : hint_kind -> string
val pp_data : Format.formatter -> data -> unit
val pp_strategy : Format.formatter -> strategy -> unit
val pp_repair : Format.formatter -> repair -> unit
val pp : Format.formatter -> t -> unit
val pp_reply : Format.formatter -> reply -> unit
