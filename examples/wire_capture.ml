(* Wire capture: watch a service session as bytes on the wire.

   Interposes a codec proxy on the cluster network: every message is
   encoded with the binary wire format (PROTOCOL.md), framed, hex-
   dumped, decoded again and only then delivered — a faithful stand-in
   for a socket transport, proving the protocol is fully serializable.

   Run with: dune exec examples/wire_capture.exe *)

open Plookup
open Plookup_store
module Net = Plookup_net.Net

let hex s =
  String.concat " "
    (List.init (String.length s) (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))

let truncated_hex s =
  let h = hex s in
  if String.length h <= 54 then h else String.sub h 0 51 ^ "..."

let () =
  let cluster = Cluster.create ~seed:12 ~n:4 () in
  let service = Service.of_cluster cluster (Service.hash 2) in
  let frames = ref 0 in
  let bytes_total = ref 0 in
  Net.wrap_handler (Cluster.net cluster) (fun inner dst src msg ->
      (* Request over the wire... *)
      let wire = Codec.frame (Codec.encode msg) in
      frames := !frames + 1;
      bytes_total := !bytes_total + String.length wire;
      let decoded =
        match Codec.unframe wire ~pos:0 with
        | Ok (body, _) -> (
          match Codec.decode body with
          | Ok m -> m
          | Error e -> failwith ("decode: " ^ e))
        | Error e -> failwith ("unframe: " ^ e)
      in
      Format.printf "%-8s -> server %d  %3dB  %-28s %s@."
        (Format.asprintf "%a" Net.pp_sender src)
        dst (String.length wire)
        (Format.asprintf "%a" Msg.pp decoded)
        (truncated_hex wire);
      (* ...handled by the real strategy code, reply goes back the same
         way. *)
      let reply = inner dst src decoded in
      let reply_wire = Codec.frame (Codec.encode_reply reply) in
      bytes_total := !bytes_total + String.length reply_wire;
      match Codec.unframe reply_wire ~pos:0 with
      | Ok (body, _) -> (
        match Codec.decode_reply body with
        | Ok r -> r
        | Error e -> failwith ("reply decode: " ^ e))
      | Error e -> failwith ("reply unframe: " ^ e));

  Format.printf "--- place 5 mirrors under Hash-2 ---@.";
  Service.place service
    (List.mapi (fun i host -> Entry.v ~payload:host i)
       [ "alpha.example"; "bravo.example"; "charlie.example"; "delta.example";
         "echo.example" ]);

  Format.printf "@.--- partial_lookup(2) ---@.";
  let r = Service.partial_lookup service 2 in
  Format.printf "%a@." Lookup_result.pp r;

  Format.printf "@.--- add one entry, delete one entry ---@.";
  Service.add service (Entry.v ~payload:"foxtrot.example" 5);
  Service.delete service (Entry.v 0);

  Format.printf "@.session: %d frames, %d bytes on the wire@." !frames !bytes_total
