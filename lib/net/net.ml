open Plookup_util

type sender = Client | Server of int

(* Senders are keyed by an integer code so that per-link RNG streams and
   partition sides treat clients and servers uniformly: -1 is "the
   client side", 0..n-1 are the servers. *)
let code = function Client -> -1 | Server i -> i

type faults = {
  loss : float;
  duplication : float;
  jitter : float;
  fault_seed : int;
  links : (int * int, Rng.t) Hashtbl.t;
}

type partition_side = [ `A | `B ]

type partition = {
  pname : string;
  a : int list;
  b : int list;
  clients : partition_side;
}

type ('msg, 'reply) t = {
  n : int;
  mutable handler : (int -> sender -> 'msg -> 'reply) option;
  up : bool array;
  received : int array;
  mutable dropped : int;
  mutable lost : int;
  mutable blocked : int;
  mutable duplicated : int;
  mutable broadcast_count : int;
  mutable client_count : int;
  mutable repair_count : int;
  mutable in_repair : bool;
  mutable engine : (Plookup_sim.Engine.t * (src:sender -> dst:int -> float)) option;
  mutable status_listeners : (int -> up:bool -> unit) list;
  mutable drop_listener : (src:sender -> dst:int -> 'msg -> unit) option;
  mutable faults : faults option;
  mutable faults_on : bool;
  mutable partitions : partition list;
}

let create ~n =
  if n <= 0 then invalid_arg "Net.create: n must be positive";
  { n;
    handler = None;
    up = Array.make n true;
    received = Array.make n 0;
    dropped = 0;
    lost = 0;
    blocked = 0;
    duplicated = 0;
    broadcast_count = 0;
    client_count = 0;
    repair_count = 0;
    in_repair = false;
    engine = None;
    status_listeners = [];
    drop_listener = None;
    faults = None;
    faults_on = false;
    partitions = [] }

let n t = t.n

let set_handler t h = t.handler <- Some h

let wrap_handler t wrap =
  match t.handler with
  | None -> invalid_arg "Net.wrap_handler: no handler installed"
  | Some inner -> t.handler <- Some (wrap inner)

let check_node t i =
  if i < 0 || i >= t.n then invalid_arg "Net: server index out of range"

let notify_status t i up = List.iter (fun f -> f i ~up) t.status_listeners

let fail t i =
  check_node t i;
  if t.up.(i) then begin
    t.up.(i) <- false;
    notify_status t i false
  end

let recover t i =
  check_node t i;
  if not t.up.(i) then begin
    t.up.(i) <- true;
    notify_status t i true
  end

let set_status_listener t f = t.status_listeners <- [ f ]
let add_status_listener t f = t.status_listeners <- t.status_listeners @ [ f ]
let set_drop_listener t f = t.drop_listener <- Some f

let is_up t i =
  check_node t i;
  t.up.(i)

let up_servers t =
  List.filter (fun i -> t.up.(i)) (List.init t.n Fun.id)

let fail_exactly t down =
  for i = 0 to t.n - 1 do
    recover t i
  done;
  List.iter (fail t) down

(* {2 Fault injection} *)

let set_faults t ~seed ?(loss = 0.) ?(duplication = 0.) ?(jitter = 0.) () =
  if loss < 0. || loss >= 1. then invalid_arg "Net.set_faults: loss must be in [0, 1)";
  if duplication < 0. || duplication > 1. then
    invalid_arg "Net.set_faults: duplication must be in [0, 1]";
  if jitter < 0. then invalid_arg "Net.set_faults: jitter must be non-negative";
  t.faults <-
    Some { loss; duplication; jitter; fault_seed = seed; links = Hashtbl.create 16 };
  t.faults_on <- true

let clear_faults t =
  t.faults <- None;
  t.faults_on <- false

let set_faults_enabled t on = t.faults_on <- on
let faults_enabled t = t.faults_on && Option.is_some t.faults
let active_faults t = if t.faults_on then t.faults else None

(* Each directed link owns an RNG stream derived from the fault seed, so
   the drop/duplicate/jitter schedule of a link depends only on the
   sequence of transmissions on that link — deterministic regardless of
   how traffic on other links interleaves. *)
let link_rng f ~from_code ~to_code =
  match Hashtbl.find_opt f.links (from_code, to_code) with
  | Some rng -> rng
  | None ->
    let h = Rng.mix64 (Int64.of_int f.fault_seed) in
    let h = Rng.mix64 (Int64.logxor h (Int64.of_int (from_code + 1))) in
    let h = Rng.mix64 (Int64.logxor h (Int64.of_int (to_code + 1))) in
    let rng = Rng.create (Int64.to_int h land max_int) in
    Hashtbl.add f.links (from_code, to_code) rng;
    rng

(* {2 Partitions} *)

let side_of p c =
  if c = -1 then Some p.clients
  else if List.mem c p.a then Some `A
  else if List.mem c p.b then Some `B
  else None

let crosses p ~from_code ~to_code =
  match (side_of p from_code, side_of p to_code) with
  | Some x, Some y -> x <> y
  | _ -> false

let link_blocked t ~from_code ~to_code =
  List.exists (fun p -> crosses p ~from_code ~to_code) t.partitions

let partition t ~name ?(clients = `A) ~a ~b () =
  List.iter (check_node t) a;
  List.iter (check_node t) b;
  if List.exists (fun i -> List.mem i b) a then
    invalid_arg "Net.partition: a server cannot be on both sides";
  t.partitions <-
    { pname = name; a; b; clients }
    :: List.filter (fun p -> p.pname <> name) t.partitions

let heal t ~name = t.partitions <- List.filter (fun p -> p.pname <> name) t.partitions
let heal_all t = t.partitions <- []
let partitions t = List.rev_map (fun p -> p.pname) t.partitions

let reachable t ~src ~dst =
  check_node t dst;
  not (link_blocked t ~from_code:(code src) ~to_code:dst)

(* {2 Messaging} *)

let handler_exn t =
  match t.handler with
  | Some h -> h
  | None -> invalid_arg "Net: no handler installed"

let account t ~src ~dst =
  t.received.(dst) <- t.received.(dst) + 1;
  if t.in_repair then t.repair_count <- t.repair_count + 1;
  match src with Client -> t.client_count <- t.client_count + 1 | Server _ -> ()

(* Final delivery: liveness check, accounting, handler.  All fault
   decisions have already been made by the caller. *)
let deliver t ~src ~dst msg =
  if not t.up.(dst) then begin
    t.dropped <- t.dropped + 1;
    (match t.drop_listener with Some f -> f ~src ~dst msg | None -> ());
    None
  end
  else begin
    account t ~src ~dst;
    Some ((handler_exn t) dst src msg)
  end

(* One synchronous server-bound transmission: partition, then loss, then
   delivery (possibly twice when duplicated).  Jitter is meaningless
   without an engine, so the synchronous path never draws it. *)
let sync_transmit t ~src ~dst msg =
  if link_blocked t ~from_code:(code src) ~to_code:dst then begin
    t.blocked <- t.blocked + 1;
    None
  end
  else
    match active_faults t with
    | None -> deliver t ~src ~dst msg
    | Some f ->
      let rng = link_rng f ~from_code:(code src) ~to_code:dst in
      if Rng.bernoulli rng f.loss then begin
        t.lost <- t.lost + 1;
        None
      end
      else begin
        let reply = deliver t ~src ~dst msg in
        if Rng.bernoulli rng f.duplication then begin
          t.duplicated <- t.duplicated + 1;
          ignore (deliver t ~src ~dst msg)
        end;
        reply
      end

let send t ~src ~dst msg =
  check_node t dst;
  sync_transmit t ~src ~dst msg

let broadcast t ~src msg =
  t.broadcast_count <- t.broadcast_count + 1;
  let replies = ref [] in
  for dst = t.n - 1 downto 0 do
    match sync_transmit t ~src ~dst msg with
    | Some reply -> replies := (dst, reply) :: !replies
    | None -> ()
  done;
  !replies

let messages_received t = Array.fold_left ( + ) 0 t.received

let messages_received_by t i =
  check_node t i;
  t.received.(i)

let messages_dropped t = t.dropped
let messages_lost t = t.lost
let messages_blocked t = t.blocked
let duplicates_delivered t = t.duplicated
let broadcasts t = t.broadcast_count
let client_requests t = t.client_count
let repair_messages t = t.repair_count

let tally_as_repair t f =
  let saved = t.in_repair in
  t.in_repair <- true;
  Fun.protect ~finally:(fun () -> t.in_repair <- saved) f

let reset_counters t =
  Array.fill t.received 0 t.n 0;
  t.dropped <- 0;
  t.lost <- 0;
  t.blocked <- 0;
  t.duplicated <- 0;
  t.broadcast_count <- 0;
  t.client_count <- 0;
  t.repair_count <- 0

let attach_engine t engine ~latency = t.engine <- Some (engine, latency)

(* Delays (relative to now) at which copies of one engine-routed
   transmission arrive: [] when partitioned or lost, two entries when
   duplicated, each copy jittered independently. *)
let transmission_delays t ~from_code ~to_code ~base =
  if link_blocked t ~from_code ~to_code then begin
    t.blocked <- t.blocked + 1;
    []
  end
  else
    match active_faults t with
    | None -> [ base ]
    | Some f ->
      let rng = link_rng f ~from_code ~to_code in
      if Rng.bernoulli rng f.loss then begin
        t.lost <- t.lost + 1;
        []
      end
      else begin
        let jittered () =
          base +. (if f.jitter > 0. then Rng.float rng f.jitter else 0.)
        in
        let d1 = jittered () in
        if Rng.bernoulli rng f.duplication then begin
          t.duplicated <- t.duplicated + 1;
          [ d1; jittered () ]
        end
        else [ d1 ]
      end

let post t ~src ~dst msg =
  check_node t dst;
  match t.engine with
  | None -> ignore (send t ~src ~dst msg)
  | Some (engine, latency) ->
    let base = latency ~src ~dst in
    List.iter
      (fun delay ->
        ignore
          (Plookup_sim.Engine.schedule_after engine ~delay (fun _ ->
               ignore (deliver t ~src ~dst msg))))
      (transmission_delays t ~from_code:(code src) ~to_code:dst ~base)

let call_async t engine ~latency ~src ~dst msg k =
  check_node t dst;
  let request_base = latency ~src ~dst in
  List.iter
    (fun request_delay ->
      ignore
        (Plookup_sim.Engine.schedule_after engine ~delay:request_delay (fun engine ->
             match deliver t ~src ~dst msg with
             | None -> () (* lost: dst was down at delivery time *)
             | Some reply ->
               let reply_base = latency ~src ~dst in
               List.iter
                 (fun reply_delay ->
                   ignore
                     (Plookup_sim.Engine.schedule_after engine ~delay:reply_delay
                        (fun _ -> k reply)))
                 (transmission_delays t ~from_code:dst ~to_code:(code src)
                    ~base:reply_base))))
    (transmission_delays t ~from_code:(code src) ~to_code:dst ~base:request_base)

let pp_sender ppf = function
  | Client -> Format.pp_print_string ppf "client"
  | Server i -> Format.fprintf ppf "server %d" i
