let take k l =
  let rec go k = function
    | [] -> []
    | _ when k <= 0 -> []
    | x :: rest -> x :: go (k - 1) rest
  in
  go k l

let rec drop k = function
  | rest when k <= 0 -> rest
  | [] -> []
  | _ :: rest -> drop (k - 1) rest
