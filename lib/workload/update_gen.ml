open Plookup_util
open Plookup_store

type op = Add of Entry.t | Delete of Entry.t
type event = { time : float; op : op }

type spec = {
  steady_entries : int;
  add_period : float;
  tail_heavy : bool;
  updates : int;
}

let default_spec = { steady_entries = 100; add_period = 10.; tail_heavy = false; updates = 10000 }

type stream = { initial : Entry.t list; events : event list; gen : Entry.Gen.t }

let generate rng spec =
  if spec.steady_entries <= 0 then invalid_arg "Update_gen.generate: steady_entries";
  if spec.add_period <= 0. then invalid_arg "Update_gen.generate: add_period";
  if spec.updates < 0 then invalid_arg "Update_gen.generate: updates";
  let gen = Entry.Gen.create () in
  let mean_lifetime = spec.add_period *. float_of_int spec.steady_entries in
  let lifetime = Dist.lifetime_of_mean ~tail_heavy:spec.tail_heavy ~mean:mean_lifetime in
  let events = ref [] in
  let emit time op = events := { time; op } :: !events in
  (* Initial steady-state population: alive at time 0 with full lifetime
     draws, their deletes scheduled like any other entry's. *)
  let initial =
    List.init spec.steady_entries (fun _ ->
        let e = Entry.Gen.fresh gen in
        emit (Dist.draw_lifetime rng lifetime) (Delete e);
        e)
  in
  (* Poisson adds: generate enough arrivals that, after merging with the
     initial population's deletes, we can truncate to [updates] events.
     Each add contributes itself plus (usually) one delete, so [updates]
     arrivals always suffice. *)
  let clock = ref 0. in
  for _ = 1 to spec.updates do
    clock := !clock +. Dist.poisson_interarrival rng ~rate:(1. /. spec.add_period);
    let e = Entry.Gen.fresh gen in
    emit !clock (Add e);
    emit (!clock +. Dist.draw_lifetime rng lifetime) (Delete e)
  done;
  let sorted =
    List.stable_sort (fun a b -> Float.compare a.time b.time) (List.rev !events)
  in
  (* Truncate to the requested number of updates, dropping deletes whose
     adds got cut (can only happen right at the horizon). *)
  let rec take k added acc = function
    | [] -> List.rev acc
    | _ when k = 0 -> List.rev acc
    | ({ op = Add e; _ } as ev) :: rest ->
      take (k - 1) (Entry.Set.add e added) (ev :: acc) rest
    | ({ op = Delete e; _ } as ev) :: rest ->
      let known =
        Entry.Set.mem e added || List.exists (fun e' -> Entry.equal e e') initial
      in
      if known then take (k - 1) added (ev :: acc) rest else take k added acc rest
  in
  { initial; events = take spec.updates Entry.Set.empty [] sorted; gen }

let pp_event ppf { time; op } =
  match op with
  | Add e -> Format.fprintf ppf "%10.2f add %a" time Entry.pp e
  | Delete e -> Format.fprintf ppf "%10.2f del %a" time Entry.pp e

let live_after stream k =
  let table = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace table (Entry.id e) e) stream.initial;
  List.iter
    (fun { op; _ } ->
      match op with
      | Add e -> Hashtbl.replace table (Entry.id e) e
      | Delete e -> Hashtbl.remove table (Entry.id e))
    (Plookup_util.List_util.take k stream.events);
  Hashtbl.fold (fun _ e acc -> e :: acc) table []
