(** Client-side server probing disciplines.

    The strategies differ in *which* servers a client contacts and in
    what order; the accumulation rule is shared: keep contacting servers,
    merging the distinct entries returned, until at least [t] distinct
    entries are in hand or no further server remains.  Each contact is a
    {!Msg.Lookup} message, so it shows up in the network's message
    accounting and in the returned lookup cost.

    All probes honour an optional [reachable] predicate (the
    limited-reachability variation of Section 7.2): servers outside the
    client's reach are never contacted. *)

val pick_from_table :
  (int, Plookup_store.Entry.t) Hashtbl.t ->
  rng:Plookup_util.Rng.t ->
  target:int ->
  Plookup_store.Entry.t list
(** The shared truncation rule: drain the merged-answers table and, when
    it overshoots [target], keep a uniform [target]-subset (one
    {!Plookup_util.Rng.sample} draw).  Drains through a directly-sized
    array — no intermediate list — while consuming the identical RNG
    draws as the historical fold-to-list formulation. *)

val single :
  ?reachable:(int -> bool) -> Cluster.t -> t:int -> Lookup_result.t
(** Contact one random reachable up server and return its answer as-is —
    the Full-Replication / Fixed-x client ("a client selects a random
    server to do the lookup").  If that one answer is short, no further
    server is tried, matching the paper (those strategies make every
    server identical, so retrying is pointless).  Returns
    {!Lookup_result.empty} if no server is reachable. *)

val random_order :
  ?reachable:(int -> bool) -> Cluster.t -> t:int -> Lookup_result.t
(** Contact reachable up servers in uniformly random order without
    repetition until satisfied — the RandomServer-x / Hash-y client. *)

val stride :
  ?reachable:(int -> bool) -> Cluster.t -> start:int -> step:int -> t:int -> Lookup_result.t
(** Contact [start], [start+step], [start+2*step], ... (mod n) — the
    Round-Robin-y client, which knows servers [step] apart share the
    fewest entries.  A down or unreachable server in the sequence makes
    the client fall back to random probing over the remaining servers,
    as the paper prescribes ("if there are any server failures, choose
    random servers instead").  [start] and [step] may be any integers
    (both are normalized mod n, so negative, zero and >= n strides are
    all safe); when the stride cycle covers only some residues the probe
    extends to the remaining servers rather than looping. *)
