open Plookup
open Plookup_store
open Plookup_util
module Load = Plookup_metrics.Load
module Net = Plookup_net.Net

let id = "hotspot"
let title = "Extension: popular-key hot spots, key partitioning vs partial lookup"

let key_name i = Printf.sprintf "key-%03d" i

(* Per-server lookup load of a partial-lookup directory: per-key
   services index the same physical servers 0..n-1, so summing each
   key-cluster's per-server counters models one shared fleet. *)
let partial_load ctx ~obs ~n ~keys ~entries_per_key ~t ~lookups ~alpha config =
  let directory =
    Directory.create ~seed:(Ctx.run_seed ctx 1) ~obs ~n ~default:config ()
  in
  let gen = Entry.Gen.create () in
  for k = 0 to keys - 1 do
    Directory.place directory ~key:(key_name k) (Entry.Gen.batch gen entries_per_key)
  done;
  (* Placement traffic is not lookup load. *)
  List.iter
    (fun key ->
      match Directory.service_of directory key with
      | Some service -> Net.reset_counters (Cluster.net (Service.cluster service))
      | None -> ())
    (Directory.keys directory);
  let rng = Rng.create (Ctx.run_seed ctx 2) in
  for _ = 1 to lookups do
    let k = Dist.zipf_ranks rng ~n:keys ~alpha - 1 in
    ignore (Directory.partial_lookup directory ~key:(key_name k) t)
  done;
  let loads = Array.make n 0 in
  List.iter
    (fun key ->
      match Directory.service_of directory key with
      | Some service ->
        let net = Cluster.net (Service.cluster service) in
        for s = 0 to n - 1 do
          loads.(s) <- loads.(s) + Net.messages_received_by net s
        done
      | None -> ())
    (Directory.keys directory);
  Load.summarize loads

let partitioned_load ctx ~n ~keys ~entries_per_key ~t ~lookups ~alpha =
  let service = Partitioned.create ~seed:(Ctx.run_seed ctx 1) ~n () in
  let gen = Entry.Gen.create () in
  for k = 0 to keys - 1 do
    Partitioned.place service ~key:(key_name k) (Entry.Gen.batch gen entries_per_key)
  done;
  Partitioned.reset_load service;
  let rng = Rng.create (Ctx.run_seed ctx 2) in
  for _ = 1 to lookups do
    let k = Dist.zipf_ranks rng ~n:keys ~alpha - 1 in
    ignore (Partitioned.lookup service ~key:(key_name k) t)
  done;
  Load.summarize (Partitioned.load service)

let run ?(n = 10) ?(keys = 50) ?(entries_per_key = 20) ?(t = 3) ?(lookups = 20000)
    ?(alpha = 1.0) ctx =
  let lookups = Ctx.scaled ctx lookups in
  let table =
    Table.create ~title
      ~columns:[ "service"; "peak/avg load"; "top server %"; "load cov"; "mean cost" ]
  in
  let row name summary =
    Table.add_row table
      [ Table.S name;
        Table.F summary.Load.peak_to_average;
        Table.F (100. *. summary.Load.top_share);
        Table.F summary.Load.cov;
        Table.F (float_of_int summary.Load.total /. float_of_int lookups) ]
  in
  (* One parallel unit per service row; every row derives its seeds from
     the context alone, so results do not depend on evaluation order. *)
  let cells =
    Array.of_list
      (( "Partitioned (Chord-style)",
         fun ~obs:_ -> partitioned_load ctx ~n ~keys ~entries_per_key ~t ~lookups ~alpha )
      :: List.map
           (fun config ->
             ( Printf.sprintf "Partial: %s" (Service.config_name config),
               fun ~obs ->
                 partial_load ctx ~obs ~n ~keys ~entries_per_key ~t ~lookups ~alpha config ))
           [ Service.full_replication; Service.round_robin 2;
             Service.random_server (2 * entries_per_key / 10 |> max 1) ])
  in
  let summaries =
    Runner.map_obs ctx ~count:(Array.length cells) (fun i ~obs ->
        let name, thunk = cells.(i) in
        (name, thunk ~obs))
  in
  Array.iter (fun (name, summary) -> row name summary) summaries;
  table
