(** A fixed-size, work-stealing-free parallel map.

    [Pool] is the single concurrency primitive of the repo: experiments
    hand it an array of independent replicate descriptions and get the
    results back {e in input order}, so aggregation code never observes
    completion order and every caller is deterministic at any [jobs]
    value (see DESIGN.md, "Performance").

    Two implementations exist, selected at build time by dune
    [enabled_if] on the compiler version: on OCaml >= 5.0 workers are
    stdlib [Domain]s pulling indices from an atomic counter; on 4.x the
    fallback maps sequentially in the calling thread.  Both present
    exactly this interface and both raise the exception of the
    lowest-index failing element, so behaviour (results, exceptions,
    everything but wall-clock) is identical across compilers and job
    counts. *)

val parallel_available : bool
(** [true] when this build runs workers on real [Domain]s (OCaml 5+),
    [false] for the sequential fallback. *)

val recommended_jobs : unit -> int
(** A sensible default worker count: the runtime's recommended domain
    count on OCaml 5 (usually the core count), [1] for the fallback. *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f arr] is [Array.map f arr] computed by up to [jobs]
    workers.  Results are returned in input order regardless of
    completion order.  [f] must not touch shared mutable state (every
    call site passes a self-contained replicate closure).

    [jobs <= 1], singleton and empty arrays short-circuit to a plain
    sequential map in the calling domain.

    If one or more applications of [f] raise, every element still runs
    to completion and the exception of the {e lowest} failing index is
    re-raised — the same exception a sequential [Array.map] would have
    produced first. *)
