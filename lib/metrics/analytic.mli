(** Closed-form results from the paper, asserted against simulation in
    the test suite and plotted next to measurements by the experiments.

    Sources: Table 1 (storage), Section 4.2 (lookup cost), Section 4.3
    (coverage), Section 4.4 (fault tolerance), Section 6.4 (the Fixed-x
    vs Hash-y update-overhead crossover). *)

val storage : Plookup.Service.config -> n:int -> h:int -> float
(** Table 1 storage cost (expected, for Hash-y): FullReplication [h*n],
    Fixed-x/RandomServer-x [x*n], Round-y [h*y],
    Hash-y [h*n*(1-(1-1/n)^y)]. *)

val round_robin_lookup_cost : n:int -> h:int -> y:int -> t:int -> float
(** ceil(t*n / (y*h)) — each Round-y server holds [y*h/n] entries and
    consecutive probes are disjoint. *)

val full_replication_lookup_cost : float
(** 1. *)

val fixed_lookup_cost : x:int -> t:int -> float option
(** 1 when [t <= x]; [None] (undefined) otherwise — Fixed-x cannot answer
    targets beyond x. *)

val coverage_full : h:int -> float
val coverage_fixed : x:int -> h:int -> float
(** min x h. *)

val coverage_random_server : n:int -> h:int -> x:int -> float
(** h * (1 - (1 - x/h)^n) — the chance an entry misses every server's
    random subset is (1 - x/h)^n. *)

val coverage_with_budget : h:int -> total_storage:int -> float
(** Round-y / Hash-y under a storage budget: min(total_storage, h),
    because their round-major placement stores each entry once before
    any duplicates. *)

val fault_tolerance_full : n:int -> int
(** n - 1: one survivor answers everything. *)

val fault_tolerance_fixed : n:int -> x:int -> t:int -> int
(** n - 1 when [t <= x]; -1 (never satisfiable) otherwise. *)

val fault_tolerance_round_robin : n:int -> h:int -> y:int -> t:int -> int
(** n - ceil(t*n/h) + y - 1 (Section 4.4), capped at n - 1 (a lone
    surviving server already holds y*h/n entries). *)

val hash_expected_entries_per_server : n:int -> h:int -> y:int -> float
(** h * (1 - (1 - 1/n)^y) — mean occupancy of one Hash-y server. *)

val update_cost_fixed : n:int -> h:int -> x:int -> float
(** Expected processed messages per update for Fixed-x:
    1 + (x/h) * n (Section 6.4). *)

val update_cost_hash : y:int -> float
(** 1 + y (Section 6.4, barring hash collisions). *)

val optimal_hash_y : n:int -> h:int -> t:int -> int
(** The y Section 6.4 selects per ratio t/h: y = ceil(t*n/h), the
    smallest y making the nominal entries-per-server [y*h/n] at least
    [t] so lookups cost ~1.  Never below 1 and capped at [n]. *)

val optimal_hash_y_collision_aware : n:int -> h:int -> t:int -> int
(** Like {!optimal_hash_y} but accounting for hash collisions: smallest
    y with {!hash_expected_entries_per_server} at least [t].  Slightly
    larger than the paper's choice near the breakpoints; used by the
    ablation bench. *)

val crossover_equal_cost : n:int -> h:int -> x:int -> y:int -> int
(** Sign of [update_cost_fixed - update_cost_hash]: negative when Fixed
    is cheaper, 0 at the crossover (x/h)*n = y, positive when Hash is
    cheaper. *)
