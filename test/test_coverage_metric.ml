open Plookup
module Coverage = Plookup_metrics.Coverage
module Analytic = Plookup_metrics.Analytic

let test_complete_for_full_and_round () =
  List.iter
    (fun config ->
      let service, _ = Helpers.placed_service ~n:10 ~h:100 config in
      Helpers.check_int (Service.config_name config) 100
        (Coverage.measured (Service.cluster service)))
    [ Service.full_replication; Service.round_robin 1; Service.round_robin 2;
      Service.hash 1; Service.hash 3 ]

let test_fixed_coverage_is_x () =
  let service, _ = Helpers.placed_service ~n:10 ~h:100 (Service.fixed 20) in
  Helpers.check_int "x" 20 (Coverage.measured (Service.cluster service))

let test_failure_reduces_coverage () =
  let service, _ = Helpers.placed_service ~n:4 ~h:8 (Service.round_robin 1) in
  let cluster = Service.cluster service in
  Helpers.check_int "intact" 8 (Coverage.measured cluster);
  Cluster.fail cluster 0;
  Helpers.check_int "entries on server 0 lost" 6 (Coverage.measured cluster);
  Cluster.recover cluster 0;
  Helpers.check_int "recovered" 8 (Coverage.measured cluster)

let test_random_server_matches_formula () =
  let mean, _ =
    Coverage.measured_over_instances ~seed:5 ~n:10 ~entries:100
      ~config:(Service.random_server 20) ~runs:300 ()
  in
  Helpers.roughly ~rel:0.02 "measured ~ h(1-(1-x/h)^n)"
    (Analytic.coverage_random_server ~n:10 ~h:100 ~x:20)
    mean

let test_budget_coverage () =
  List.iter
    (fun budget ->
      let mean, _ =
        Coverage.measured_over_instances ~seed:3 ~n:10 ~entries:100
          ~config:(Service.round_robin 2) ~budget ~runs:5 ()
      in
      Helpers.close
        (Printf.sprintf "round budget %d" budget)
        (Analytic.coverage_with_budget ~h:100 ~total_storage:budget)
        mean)
    [ 10; 50; 100; 150; 200 ]

let test_hash_budget_coverage_matches_round () =
  (* Fig 6 plots Round and Hash as one curve; check Hash agrees. *)
  List.iter
    (fun budget ->
      let mean, _ =
        Coverage.measured_over_instances ~seed:3 ~n:10 ~entries:100
          ~config:(Service.hash 2) ~budget ~runs:5 ()
      in
      Helpers.close
        (Printf.sprintf "hash budget %d" budget)
        (Analytic.coverage_with_budget ~h:100 ~total_storage:budget)
        mean)
    [ 10; 50; 100; 150; 200 ]

let prop_coverage_bounded_by_h =
  Helpers.qcheck "coverage never exceeds the number of live entries"
    QCheck2.Gen.(pair (int_range 1 30) (int_range 1 4))
    (fun (h, y) ->
      let service, _ = Helpers.placed_service ~n:6 ~h (Service.hash y) in
      Coverage.measured (Service.cluster service) <= h)

let () =
  Helpers.run "coverage_metric"
    [ ( "coverage",
        [ Alcotest.test_case "complete strategies" `Quick test_complete_for_full_and_round;
          Alcotest.test_case "fixed = x" `Quick test_fixed_coverage_is_x;
          Alcotest.test_case "failures reduce" `Quick test_failure_reduces_coverage;
          Alcotest.test_case "randomserver formula" `Slow test_random_server_matches_formula;
          Alcotest.test_case "round budget" `Quick test_budget_coverage;
          Alcotest.test_case "hash budget" `Quick test_hash_budget_coverage_matches_round;
          prop_coverage_bounded_by_h ] ) ]
