(** Probability distributions used by the synthetic-workload generator
    (Section 6.1 of the paper).

    The paper drives its dynamic experiments with Poisson arrivals
    (expectation lambda = 10 time units between adds) and entry lifetimes
    drawn either from an exponential distribution or from a truncated
    "Zipf-like" law P(t) = 1/(t ln C) on [1, C], both scaled so the mean
    lifetime equals [lambda * h]. *)

type lifetime =
  | Exponential of float  (** mean *)
  | Zipf_like of float
      (** [Zipf_like c]: density proportional to 1/t on [1, c].  The mean
          is (c - 1) / ln c. *)

val exponential : Rng.t -> mean:float -> float
(** A draw from Exp(mean), via inverse CDF. *)

val poisson_interarrival : Rng.t -> rate:float -> float
(** Interarrival time of a Poisson process with [rate] events per time
    unit, i.e. an exponential with mean [1/rate]. *)

val zipf_like : Rng.t -> c:float -> float
(** A draw from the paper's Zipf-like lifetime law on [1, c], by inverse
    CDF: F(t) = ln t / ln c, so t = c^u for uniform u. *)

val zipf_like_mean : c:float -> float
(** Closed-form mean of {!zipf_like}: (c - 1) / ln c. *)

val zipf_like_c_for_mean : mean:float -> float
(** Solve (c - 1)/ln c = mean for c by bisection, so a Zipf-like lifetime
    can be scaled to a target expectation (the paper scales both lifetime
    laws to expectation lambda*h).  Requires [mean > 1]. *)

val lifetime_of_mean : tail_heavy:bool -> mean:float -> lifetime
(** The paper's two lifetime laws scaled to [mean]: exponential when
    [tail_heavy] is false, Zipf-like when true. *)

val draw_lifetime : Rng.t -> lifetime -> float

val lifetime_mean : lifetime -> float

val zipf_ranks : Rng.t -> n:int -> alpha:float -> int
(** Classic discrete Zipf over ranks 1..n with exponent [alpha]; used by
    example workloads to pick popular keys.  Returns a rank in [1, n]. *)

val uniform_in : Rng.t -> lo:float -> hi:float -> float
