open Plookup_util
module Metrics = Plookup_obs.Metrics
module Trace = Plookup_obs.Trace
module Span = Plookup_obs.Span

type sender = Client | Server of int

(* Senders are keyed by an integer code so that per-link RNG streams and
   partition sides treat clients and servers uniformly: -1 is "the
   client side", 0..n-1 are the servers. *)
let code = function Client -> -1 | Server i -> i

type faults = {
  loss : float;
  duplication : float;
  jitter : float;
  fault_seed : int;
  links : (int * int, Rng.t) Hashtbl.t;
}

type partition_side = [ `A | `B ]

(* Side membership is kept as bitsets so the per-delivery partition
   check is O(1) in the number of servers, not a [List.mem] scan over
   the side lists. *)
type partition = {
  pname : string;
  a_bits : Bitset.t;
  b_bits : Bitset.t;
  clients : partition_side;
}

(* [coder msg] is the packed plane/msg code for the message — from
   {!Trace.intern_message}, precomputed per constructor at setup so the
   per-event cost is one closure call returning an immediate int. *)
type 'msg tracing = { tr : Trace.t; coder : 'msg -> int }

(* The overload model: each server is a single-threaded queueing station
   with a finite inbox.  [busy_until] is when the server frees up,
   [depth] the inbox occupancy (waiting + in service), [slow] a
   per-server service-time multiplier — 1.0 healthy, 10-100x a
   gray-degraded server that is alive but crawling. *)
type 'reply capacity = {
  service_time : float; (* time units per message at full speed *)
  queue_limit : int;
  nack : 'reply option; (* Some r: shed with a fast nack; None: shed silently *)
  busy_until : float array;
  depth : int array;
  slow : float array;
  depth_g : Metrics.gauge array; (* high-water inbox depth, per server *)
  shed : Metrics.counter;
}

(* Per-stripe mirrors of [up_fen] over a contiguous partition of the id
   space: stripe [s] covers global ids [bounds.(s), bounds.(s + 1)) and
   [fens.(s)] indexes them by {e local} offset.  The point of the local
   views is the sharded simulation: a shard that owns stripe [s] can do
   up-counts and k-th-up picks over its own servers without reading the
   global Fenwick that other shards are concurrently updating. *)
type stripe_views = { bounds : int array; fens : Fenwick.t array }

type ('msg, 'reply) t = {
  n : int;
  metrics : Metrics.t;
  mutable handler : (int -> sender -> 'msg -> 'reply) option;
  up : bool array;
  (* 0/1 per server, mirroring [up]: O(1) up-count and O(log n) k-th-up
     selection for the uniform-pick hot paths. *)
  up_fen : Fenwick.t;
  mutable stripe_views : stripe_views option;
  (* Counters are registry cells private to this network instance, so the
     accessors below report exactly this network's traffic (snapshots
     aggregate across instances; see {!Plookup_obs.Metrics}). *)
  received : Metrics.counter array;
  mutable plane_received : Metrics.counter array; (* set by [set_planes] *)
  mutable classify : ('msg -> int) option;
  dropped : Metrics.counter;
  lost : Metrics.counter;
  blocked : Metrics.counter;
  duplicated : Metrics.counter;
  broadcast_count : Metrics.counter;
  client_count : Metrics.counter;
  repair_count : Metrics.counter;
  delay_h : Metrics.histogram;
  mutable in_repair : bool;
  mutable tracing : 'msg tracing option;
  mutable engine : (Plookup_sim.Engine.t * (src:sender -> dst:int -> float)) option;
  mutable status_listeners : (int -> up:bool -> unit) list;
  mutable drop_listener : (src:sender -> dst:int -> 'msg -> unit) option;
  mutable faults : faults option;
  mutable faults_on : bool;
  mutable partitions : partition list;
  mutable capacity : 'reply capacity option;
}

let create ?metrics ~n () =
  if n <= 0 then invalid_arg "Net.create: n must be positive";
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  let up_fen = Fenwick.create n in
  for i = 0 to n - 1 do
    Fenwick.add up_fen i 1
  done;
  { n;
    metrics = m;
    handler = None;
    up = Array.make n true;
    up_fen;
    stripe_views = None;
    received =
      Array.init n (fun i ->
          Metrics.counter m
            ~labels:[ ("server", string_of_int i) ]
            "net.messages.received");
    plane_received = [||];
    classify = None;
    dropped = Metrics.counter m "net.messages.dropped";
    lost = Metrics.counter m "net.messages.lost";
    blocked = Metrics.counter m "net.messages.blocked";
    duplicated = Metrics.counter m "net.messages.duplicated";
    broadcast_count = Metrics.counter m "net.broadcasts";
    client_count = Metrics.counter m "net.client_requests";
    repair_count = Metrics.counter m "net.messages.repair";
    delay_h = Metrics.histogram m "net.delivery.delay";
    in_repair = false;
    tracing = None;
    engine = None;
    status_listeners = [];
    drop_listener = None;
    faults = None;
    faults_on = false;
    partitions = [];
    capacity = None }

let n t = t.n
let metrics t = t.metrics

let set_planes t ~names ~classify =
  t.plane_received <-
    Array.map
      (fun p -> Metrics.counter t.metrics ~labels:[ ("plane", p) ] "net.messages.received")
      names;
  t.classify <- Some classify

let set_trace t trace ~coder = t.tracing <- Some { tr = trace; coder }

let set_handler t h = t.handler <- Some h

let wrap_handler t wrap =
  match t.handler with
  | None -> invalid_arg "Net.wrap_handler: no handler installed"
  | Some inner -> t.handler <- Some (wrap inner)

let check_node t i =
  if i < 0 || i >= t.n then invalid_arg "Net: server index out of range"

let notify_status t i up = List.iter (fun f -> f i ~up) t.status_listeners

(* Stripe lookup by binary search over the bounds array (stripes are
   contiguous and cover [0, n)). *)
let stripe_of_views v i =
  let lo = ref 0 and hi = ref (Array.length v.bounds - 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if i < v.bounds.(mid) then hi := mid else lo := mid
  done;
  !lo

let stripe_update t i delta =
  match t.stripe_views with
  | None -> ()
  | Some v ->
      let s = stripe_of_views v i in
      Fenwick.add v.fens.(s) (i - v.bounds.(s)) delta

let fail t i =
  check_node t i;
  if t.up.(i) then begin
    t.up.(i) <- false;
    Fenwick.add t.up_fen i (-1);
    stripe_update t i (-1);
    notify_status t i false
  end

let recover t i =
  check_node t i;
  if not t.up.(i) then begin
    t.up.(i) <- true;
    Fenwick.add t.up_fen i 1;
    stripe_update t i 1;
    notify_status t i true
  end

let set_status_listener t f = t.status_listeners <- [ f ]
let add_status_listener t f = t.status_listeners <- t.status_listeners @ [ f ]
let set_drop_listener t f = t.drop_listener <- Some f

let is_up t i =
  check_node t i;
  t.up.(i)

let up_servers t =
  List.filter (fun i -> t.up.(i)) (List.init t.n Fun.id)

let up_count t = Fenwick.total t.up_fen

let kth_up t k =
  if k < 0 || k >= up_count t then invalid_arg "Net.kth_up: rank out of range";
  Fenwick.select t.up_fen k

let up_servers_into t buf =
  let count = up_count t in
  if Array.length buf < count then invalid_arg "Net.up_servers_into: buffer too small";
  let j = ref 0 in
  for i = 0 to t.n - 1 do
    if t.up.(i) then begin
      buf.(!j) <- i;
      incr j
    end
  done;
  count

let attach_stripe_views t ~stripes =
  if stripes < 1 then invalid_arg "Net.attach_stripe_views: stripes must be at least 1";
  (* Contiguous near-equal stripes: the first [n mod stripes] get one
     extra server.  Stripes beyond n are empty, so stripes > n is legal
     (the oversubscribed --shards case). *)
  let base = t.n / stripes and rem = t.n mod stripes in
  let bounds = Array.make (stripes + 1) 0 in
  for s = 0 to stripes - 1 do
    bounds.(s + 1) <- bounds.(s) + base + (if s < rem then 1 else 0)
  done;
  let fens =
    Array.init stripes (fun s ->
        let lo = bounds.(s) and hi = bounds.(s + 1) in
        let fen = Fenwick.create (hi - lo) in
        for i = lo to hi - 1 do
          if t.up.(i) then Fenwick.add fen (i - lo) 1
        done;
        fen)
  in
  t.stripe_views <- Some { bounds; fens }

let stripes t =
  match t.stripe_views with None -> 0 | Some v -> Array.length v.fens

let stripe_views_exn t name =
  match t.stripe_views with
  | None -> invalid_arg (name ^ ": no stripe views attached")
  | Some v -> v

let check_stripe v name s =
  if s < 0 || s >= Array.length v.fens then invalid_arg (name ^ ": stripe out of range")

let stripe_of t i =
  check_node t i;
  let v = stripe_views_exn t "Net.stripe_of" in
  stripe_of_views v i

let stripe_bounds t s =
  let v = stripe_views_exn t "Net.stripe_bounds" in
  check_stripe v "Net.stripe_bounds" s;
  (v.bounds.(s), v.bounds.(s + 1))

let stripe_up_count t s =
  let v = stripe_views_exn t "Net.stripe_up_count" in
  check_stripe v "Net.stripe_up_count" s;
  Fenwick.total v.fens.(s)

let stripe_kth_up t s k =
  let v = stripe_views_exn t "Net.stripe_kth_up" in
  check_stripe v "Net.stripe_kth_up" s;
  if k < 0 || k >= Fenwick.total v.fens.(s) then
    invalid_arg "Net.stripe_kth_up: rank out of range";
  v.bounds.(s) + Fenwick.select v.fens.(s) k

let fail_exactly t down =
  for i = 0 to t.n - 1 do
    recover t i
  done;
  List.iter (fail t) down

(* {2 Fault injection} *)

let set_faults t ~seed ?(loss = 0.) ?(duplication = 0.) ?(jitter = 0.) () =
  if loss < 0. || loss >= 1. then invalid_arg "Net.set_faults: loss must be in [0, 1)";
  if duplication < 0. || duplication > 1. then
    invalid_arg "Net.set_faults: duplication must be in [0, 1]";
  if jitter < 0. then invalid_arg "Net.set_faults: jitter must be non-negative";
  t.faults <-
    Some { loss; duplication; jitter; fault_seed = seed; links = Hashtbl.create 16 };
  t.faults_on <- true

let clear_faults t =
  t.faults <- None;
  t.faults_on <- false

let set_faults_enabled t on = t.faults_on <- on
let faults_enabled t = t.faults_on && Option.is_some t.faults
let active_faults t = if t.faults_on then t.faults else None

(* Each directed link owns an RNG stream derived from the fault seed, so
   the drop/duplicate/jitter schedule of a link depends only on the
   sequence of transmissions on that link — deterministic regardless of
   how traffic on other links interleaves. *)
let link_rng f ~from_code ~to_code =
  match Hashtbl.find_opt f.links (from_code, to_code) with
  | Some rng -> rng
  | None ->
    let h = Rng.mix64 (Int64.of_int f.fault_seed) in
    let h = Rng.mix64 (Int64.logxor h (Int64.of_int (from_code + 1))) in
    let h = Rng.mix64 (Int64.logxor h (Int64.of_int (to_code + 1))) in
    let rng = Rng.create (Int64.to_int h land max_int) in
    Hashtbl.add f.links (from_code, to_code) rng;
    rng

(* {2 Server capacity (overload model)} *)

let set_capacity t ~service_rate ~queue_limit ?nack () =
  if service_rate <= 0. then invalid_arg "Net.set_capacity: service_rate must be positive";
  if queue_limit < 1 then invalid_arg "Net.set_capacity: queue_limit must be >= 1";
  t.capacity <-
    Some
      { service_time = 1. /. service_rate;
        queue_limit;
        nack;
        busy_until = Array.make t.n neg_infinity;
        depth = Array.make t.n 0;
        slow = Array.make t.n 1.;
        depth_g =
          Array.init t.n (fun i ->
              Metrics.gauge t.metrics
                ~labels:[ ("server", string_of_int i) ]
                "net.queue.depth");
        shed = Metrics.counter t.metrics "net.messages.shed" }

let clear_capacity t = t.capacity <- None
let has_capacity t = Option.is_some t.capacity

let capacity_exn t caller =
  match t.capacity with
  | Some c -> c
  | None -> invalid_arg (caller ^ ": no capacity model installed (see Net.set_capacity)")

let set_degraded t i ~factor =
  check_node t i;
  if factor < 1. then invalid_arg "Net.set_degraded: factor must be >= 1";
  (capacity_exn t "Net.set_degraded").slow.(i) <- factor

let degraded_factor t i =
  check_node t i;
  match t.capacity with None -> 1. | Some c -> c.slow.(i)

let queue_depth t i =
  check_node t i;
  match t.capacity with None -> 0 | Some c -> c.depth.(i)

let messages_shed t = match t.capacity with None -> 0 | Some c -> Metrics.value c.shed

(* {2 Partitions} *)

let side_of p c =
  if c = -1 then Some p.clients
  else if Bitset.mem p.a_bits c then Some `A
  else if Bitset.mem p.b_bits c then Some `B
  else None

let crosses p ~from_code ~to_code =
  match (side_of p from_code, side_of p to_code) with
  | Some x, Some y -> x <> y
  | _ -> false

let link_blocked t ~from_code ~to_code =
  t.partitions <> [] && List.exists (fun p -> crosses p ~from_code ~to_code) t.partitions

let partition t ~name ?(clients = `A) ~a ~b () =
  List.iter (check_node t) a;
  List.iter (check_node t) b;
  let a_bits = Bitset.create t.n and b_bits = Bitset.create t.n in
  List.iter (Bitset.add a_bits) a;
  List.iter (Bitset.add b_bits) b;
  (* Bitset intersection, not the old pairwise element scan: one pass
     over n/8 bytes regardless of how long the side lists are. *)
  if not (Bitset.disjoint a_bits b_bits) then
    invalid_arg "Net.partition: a server cannot be on both sides";
  t.partitions <-
    { pname = name; a_bits; b_bits; clients }
    :: List.filter (fun p -> p.pname <> name) t.partitions

let heal t ~name = t.partitions <- List.filter (fun p -> p.pname <> name) t.partitions
let heal_all t = t.partitions <- []
let partitions t = List.rev_map (fun p -> p.pname) t.partitions

let reachable t ~src ~dst =
  check_node t dst;
  not (link_blocked t ~from_code:(code src) ~to_code:dst)

(* {2 Tracing}

   Every helper first checks that a trace is attached and enabled, so a
   quiet network pays one tag test per transmission and allocates
   nothing.  A traced network allocates nothing either: each event is a
   coded emit — plain ints into the trace's preallocated ring.  Span ids
   use 0 as "no span" and negative ids for sampled-out spans, which lets
   cause links thread through the delivery path as plain ints while
   keeping whole causal trees in or out together. *)

let[@inline always] now t =
  match t.engine with Some (e, _) -> Plookup_sim.Engine.now e | None -> 0.

let[@inline always] trace_send t ~src ~dst msg =
  match t.tracing with
  | Some c when Trace.enabled c.tr ->
    Trace.emit_send c.tr ~time:(now t) ~src:(code src) ~dst ~pm:(c.coder msg)
  | _ -> 0

let[@inline always] trace_recv t ~sid ~src ~dst msg =
  match t.tracing with
  | Some c when Trace.enabled c.tr ->
    Trace.emit_recv c.tr ~time:(now t) ~cause:sid ~src:(code src) ~dst ~pm:(c.coder msg)
  | _ -> ()

let[@inline always] trace_drop t ~sid ~src ~dst ~reason msg =
  match t.tracing with
  | Some c when Trace.enabled c.tr ->
    Trace.emit_drop c.tr ~time:(now t) ~cause:sid ~src:(code src) ~dst ~pm:(c.coder msg)
      ~reason
  | _ -> ()

(* {2 Messaging} *)

let handler_exn t =
  match t.handler with
  | Some h -> h
  | None -> invalid_arg "Net: no handler installed"

let account t ~src ~dst msg =
  Metrics.incr t.received.(dst);
  (match t.classify with
  | Some plane_of -> Metrics.incr t.plane_received.(plane_of msg)
  | None -> ());
  if t.in_repair then Metrics.incr t.repair_count;
  match src with Client -> Metrics.incr t.client_count | Server _ -> ()

(* Final delivery: liveness check, accounting, handler.  All fault
   decisions have already been made by the caller; [sid] is the Send
   span this delivery resolves (0 when untraced). *)
(* The same, specialized for an untraced network (no trace hooks at
   all) — the synchronous hot path dispatches between this and the
   traced flow once per transmission. *)
let deliver_plain t ~src ~dst msg =
  if not t.up.(dst) then begin
    Metrics.incr t.dropped;
    (match t.drop_listener with Some f -> f ~src ~dst msg | None -> ());
    None
  end
  else begin
    account t ~src ~dst msg;
    Some ((handler_exn t) dst src msg)
  end

let deliver t ?(sid = 0) ~src ~dst msg =
  if not t.up.(dst) then begin
    Metrics.incr t.dropped;
    trace_drop t ~sid ~src ~dst ~reason:Span.Down msg;
    (match t.drop_listener with Some f -> f ~src ~dst msg | None -> ());
    None
  end
  else begin
    account t ~src ~dst msg;
    trace_recv t ~sid ~src ~dst msg;
    Some ((handler_exn t) dst src msg)
  end

(* One synchronous server-bound transmission: partition, then loss, then
   delivery (possibly twice when duplicated).  Jitter is meaningless
   without an engine, so the synchronous path never draws it.

   The flow is specialized twice on the tracing state, checked once per
   transmission: the untraced copy pays nothing at all (a quiet or
   disabled trace leaves the send path identical to a bare network), and
   the traced copy hoists the coder and clock reads out of the
   per-outcome branches and fuses the common send-then-deliver case into
   a single paired emit. *)
let sync_transmit_plain t ~src ~dst msg =
  if link_blocked t ~from_code:(code src) ~to_code:dst then begin
    Metrics.incr t.blocked;
    None
  end
  else
    match active_faults t with
    | None -> deliver_plain t ~src ~dst msg
    | Some f ->
      let rng = link_rng f ~from_code:(code src) ~to_code:dst in
      if Rng.bernoulli rng f.loss then begin
        Metrics.incr t.lost;
        None
      end
      else begin
        let reply = deliver_plain t ~src ~dst msg in
        if Rng.bernoulli rng f.duplication then begin
          Metrics.incr t.duplicated;
          ignore (deliver_plain t ~src ~dst msg)
        end;
        reply
      end

let sync_transmit_traced t tc ~src ~dst msg =
  let tr = tc.tr in
  let time = now t in
  let pm = tc.coder msg in
  let sc = code src in
  if link_blocked t ~from_code:sc ~to_code:dst then begin
    Metrics.incr t.blocked;
    let sid = Trace.emit_send tr ~time ~src:sc ~dst ~pm in
    Trace.emit_drop tr ~time ~cause:sid ~src:sc ~dst ~pm ~reason:Span.Blocked;
    None
  end
  else
    match active_faults t with
    | None ->
      if Array.unsafe_get t.up dst then begin
        (* The fused fast path: fault-free delivery to a live server. *)
        ignore (Trace.emit_send_recv tr ~time ~src:sc ~dst ~pm);
        account t ~src ~dst msg;
        Some ((handler_exn t) dst src msg)
      end
      else begin
        let sid = Trace.emit_send tr ~time ~src:sc ~dst ~pm in
        Metrics.incr t.dropped;
        Trace.emit_drop tr ~time ~cause:sid ~src:sc ~dst ~pm ~reason:Span.Down;
        (match t.drop_listener with Some f -> f ~src ~dst msg | None -> ());
        None
      end
    | Some f ->
      let sid = trace_send t ~src ~dst msg in
      let rng = link_rng f ~from_code:sc ~to_code:dst in
      if Rng.bernoulli rng f.loss then begin
        Metrics.incr t.lost;
        trace_drop t ~sid ~src ~dst ~reason:Span.Lost msg;
        None
      end
      else begin
        let reply = deliver t ~sid ~src ~dst msg in
        if Rng.bernoulli rng f.duplication then begin
          Metrics.incr t.duplicated;
          ignore (deliver t ~sid ~src ~dst msg)
        end;
        reply
      end

let sync_transmit t ~src ~dst msg =
  match t.tracing with
  | Some tc when Trace.enabled tc.tr -> sync_transmit_traced t tc ~src ~dst msg
  | _ -> sync_transmit_plain t ~src ~dst msg

let send t ~src ~dst msg =
  check_node t dst;
  sync_transmit t ~src ~dst msg

let broadcast t ~src msg =
  Metrics.incr t.broadcast_count;
  let replies = ref [] in
  for dst = t.n - 1 downto 0 do
    match sync_transmit t ~src ~dst msg with
    | Some reply -> replies := (dst, reply) :: !replies
    | None -> ()
  done;
  !replies

let messages_received t = Array.fold_left (fun acc c -> acc + Metrics.value c) 0 t.received

let messages_received_by t i =
  check_node t i;
  Metrics.value t.received.(i)

let messages_dropped t = Metrics.value t.dropped
let messages_lost t = Metrics.value t.lost
let messages_blocked t = Metrics.value t.blocked
let duplicates_delivered t = Metrics.value t.duplicated
let broadcasts t = Metrics.value t.broadcast_count
let client_requests t = Metrics.value t.client_count
let repair_messages t = Metrics.value t.repair_count

let tally_as_repair t f =
  let saved = t.in_repair in
  t.in_repair <- true;
  Fun.protect ~finally:(fun () -> t.in_repair <- saved) f

let reset_counters t =
  Array.iter Metrics.reset_counter t.received;
  Array.iter Metrics.reset_counter t.plane_received;
  Metrics.reset_counter t.dropped;
  Metrics.reset_counter t.lost;
  Metrics.reset_counter t.blocked;
  Metrics.reset_counter t.duplicated;
  Metrics.reset_counter t.broadcast_count;
  Metrics.reset_counter t.client_count;
  Metrics.reset_counter t.repair_count;
  Metrics.reset_histogram t.delay_h

let attach_engine t engine ~latency = t.engine <- Some (engine, latency)

(* Delays (relative to now) at which copies of one engine-routed
   transmission arrive: [] when partitioned or lost, two entries when
   duplicated, each copy jittered independently.  [spanmsg] carries the
   message for Drop spans on the traced (server-bound request) leg;
   reply legs pass nothing and stay unspanned, mirroring the counters
   (only server-received messages are costed). *)
let transmission_delays t ?(sid = 0) ?spanmsg ~from_code ~to_code ~base () =
  let dropped reason =
    match spanmsg with
    | Some msg when to_code >= 0 ->
      trace_drop t ~sid ~src:(if from_code < 0 then Client else Server from_code)
        ~dst:to_code ~reason msg
    | _ -> ()
  in
  let observe delays =
    List.iter (fun d -> Metrics.observe t.delay_h d) delays;
    delays
  in
  if link_blocked t ~from_code ~to_code then begin
    Metrics.incr t.blocked;
    dropped Span.Blocked;
    []
  end
  else
    match active_faults t with
    | None -> observe [ base ]
    | Some f ->
      let rng = link_rng f ~from_code ~to_code in
      if Rng.bernoulli rng f.loss then begin
        Metrics.incr t.lost;
        dropped Span.Lost;
        []
      end
      else begin
        let jittered () =
          base +. (if f.jitter > 0. then Rng.float rng f.jitter else 0.)
        in
        let d1 = jittered () in
        if Rng.bernoulli rng f.duplication then begin
          Metrics.incr t.duplicated;
          observe [ d1; jittered () ]
        end
        else observe [ d1 ]
      end

(* Engine-routed delivery through the capacity model.  The request
   waits in [dst]'s bounded inbox, then holds the server for one
   service time before the handler runs; a full inbox sheds the request
   at arrival time — silently, or with the configured fast nack, which
   costs the server no service time at all (the point of nacking: an
   overloaded server spends nothing telling the client to go away).
   Without a capacity model this is exactly [deliver], with no extra
   engine event, so existing runs are untouched.  [k] fires with the
   handler's reply (or the nack) once it is ready, or [None] when the
   message died. *)
let deliver_queued t engine ?(sid = 0) ~src ~dst msg k =
  match t.capacity with
  | None -> k (deliver t ~sid ~src ~dst msg)
  | Some c ->
    if not t.up.(dst) then begin
      Metrics.incr t.dropped;
      trace_drop t ~sid ~src ~dst ~reason:Span.Down msg;
      (match t.drop_listener with Some f -> f ~src ~dst msg | None -> ());
      k None
    end
    else if c.depth.(dst) >= c.queue_limit then begin
      Metrics.incr c.shed;
      trace_drop t ~sid ~src ~dst ~reason:Span.Shed msg;
      k c.nack
    end
    else begin
      let now = Plookup_sim.Engine.now engine in
      let dep = c.depth.(dst) + 1 in
      c.depth.(dst) <- dep;
      if float_of_int dep > Metrics.gauge_value c.depth_g.(dst) then
        Metrics.set_gauge c.depth_g.(dst) (float_of_int dep);
      let start = Float.max now c.busy_until.(dst) in
      let finish = start +. (c.service_time *. c.slow.(dst)) in
      c.busy_until.(dst) <- finish;
      ignore
        (Plookup_sim.Engine.schedule_after engine ~delay:(finish -. now) (fun _ ->
             c.depth.(dst) <- c.depth.(dst) - 1;
             (* Liveness is re-checked at service time: the server may
                have failed while the request sat in its queue. *)
             k (deliver t ~sid ~src ~dst msg)))
    end

let post t ~src ~dst msg =
  check_node t dst;
  match t.engine with
  | None -> ignore (send t ~src ~dst msg)
  | Some (engine, latency) ->
    let base = latency ~src ~dst in
    let sid = trace_send t ~src ~dst msg in
    List.iter
      (fun delay ->
        ignore
          (Plookup_sim.Engine.schedule_after engine ~delay (fun engine ->
               deliver_queued t engine ~sid ~src ~dst msg (fun _ -> ()))))
      (transmission_delays t ~sid ~spanmsg:msg ~from_code:(code src) ~to_code:dst
         ~base ())

let call_async t engine ~latency ~src ~dst msg k =
  check_node t dst;
  let request_base = latency ~src ~dst in
  let sid = trace_send t ~src ~dst msg in
  List.iter
    (fun request_delay ->
      ignore
        (Plookup_sim.Engine.schedule_after engine ~delay:request_delay (fun engine ->
             deliver_queued t engine ~sid ~src ~dst msg (function
               | None -> () (* lost: dst was down at delivery time *)
               | Some reply ->
                 let reply_base = latency ~src ~dst in
                 List.iter
                   (fun reply_delay ->
                     ignore
                       (Plookup_sim.Engine.schedule_after engine ~delay:reply_delay
                          (fun _ -> k reply)))
                   (transmission_delays t ~from_code:dst ~to_code:(code src)
                      ~base:reply_base ())))))
    (transmission_delays t ~sid ~spanmsg:msg ~from_code:(code src) ~to_code:dst
       ~base:request_base ())

let pp_sender ppf = function
  | Client -> Format.pp_print_string ppf "client"
  | Server i -> Format.fprintf ppf "server %d" i
