open Plookup_util
module Service = Plookup.Service
module Analytic = Plookup_metrics.Analytic
module Fault_tolerance = Plookup_metrics.Fault_tolerance

let id = "fig7"
let title = "Fig 7: fault tolerance vs target answer size (storage budget 200)"

let default_targets = [ 10; 15; 20; 25; 30; 35; 40; 45; 50 ]

let run ?(n = 10) ?(h = 100) ?(budget = 200) ?(targets = default_targets) ctx =
  let random = Service.storage_for_budget (Service.random_server 1) ~n ~h ~total:budget in
  let hash = Service.storage_for_budget (Service.hash 1) ~n ~h ~total:budget in
  let round = Service.storage_for_budget (Service.round_robin 1) ~n ~h ~total:budget in
  let y = Option.value ~default:1 (Service.param round) in
  let table =
    Table.create ~title
      ~columns:
        [ "t";
          Service.config_name random;
          Service.config_name hash;
          Service.config_name round;
          "Round analytic" ]
  in
  let runs = Ctx.scaled ctx 200 in
  let targets = Array.of_list targets in
  (* One parallel unit per target row, seeded from the target value. *)
  let rows =
    Runner.map_obs ctx ~count:(Array.length targets) (fun i ~obs ->
        let t = targets.(i) in
        let measure config =
          fst
            (Fault_tolerance.measure_over_instances ~seed:(Ctx.run_seed ctx t) ~obs ~n
               ~entries:h ~config ~t ~runs ())
        in
        (t, measure random, measure hash, measure round))
  in
  Array.iter
    (fun (t, m_random, m_hash, m_round) ->
      Table.add_row table
        [ Table.I t;
          Table.F m_random;
          Table.F m_hash;
          Table.F m_round;
          Table.I (Analytic.fault_tolerance_round_robin ~n ~h ~y ~t) ])
    rows;
  table
