open Plookup
open Plookup_store

let make ?(seed = 11) ?(n = 6) ~y () =
  let cluster = Cluster.create ~seed ~n () in
  (Dxhash.create cluster ~y, cluster)

let test_servers_of_distinct () =
  let dx, _ = make ~y:3 () in
  List.iter
    (fun id ->
      let owners = Dxhash.servers_of dx (Entry.v id) in
      Helpers.check_int "y owners" 3 (List.length owners);
      Helpers.check_int "distinct" 3 (List.length (List.sort_uniq compare owners));
      List.iter
        (fun s -> Alcotest.(check bool) "active slot" true (s >= 0 && s < 6))
        owners)
    [ 0; 1; 17; 400; 12345 ]

let test_y_clamped_to_n () =
  let dx, _ = make ~n:4 ~y:9 () in
  Helpers.check_int "y = n" 4 (Dxhash.y dx);
  Helpers.check_int "owners" 4 (List.length (Dxhash.servers_of dx (Entry.v 1)))

let test_slots_power_of_two () =
  let dx6, _ = make ~n:6 ~y:1 () in
  Helpers.check_int "n=6 -> 8 slots" 8 (Dxhash.slots dx6);
  let dx1000, _ = make ~n:1000 ~y:1 () in
  Helpers.check_int "n=1000 -> 1024 slots" 1024 (Dxhash.slots dx1000);
  let dx64, _ = make ~n:64 ~y:1 () in
  Helpers.check_int "n=64 -> 64 slots" 64 (Dxhash.slots dx64)

let test_placement_matches_probe_sequence () =
  let dx, _ = make ~y:2 () in
  let batch = Helpers.entries 40 in
  Dxhash.place dx batch;
  match Dxhash.check_invariants dx ~placed:batch with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_add_delete_maintain () =
  let dx, _ = make ~y:2 () in
  let batch = Helpers.entries 20 in
  Dxhash.place dx batch;
  let extra = Entry.v 999 in
  Dxhash.add dx extra;
  (match Dxhash.check_invariants dx ~placed:(extra :: batch) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Dxhash.delete dx extra;
  match Dxhash.check_invariants dx ~placed:batch with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_deterministic () =
  let owners_with_seed () =
    let dx, _ = make ~seed:42 ~y:2 () in
    List.map (fun id -> Dxhash.servers_of dx (Entry.v id)) (List.init 30 Fun.id)
  in
  Alcotest.(check (list (list int))) "same seed, same walk" (owners_with_seed ())
    (owners_with_seed ())

let test_partial_lookup_satisfied () =
  let dx, _ = make ~y:2 () in
  Dxhash.place dx (Helpers.entries 30);
  let r = Dxhash.partial_lookup dx 10 in
  Alcotest.(check bool) "satisfied" true (Lookup_result.satisfied r)

let test_budget_truncates_round_major () =
  let dx, cluster = make ~y:3 () in
  let batch = Helpers.entries 25 in
  Dxhash.place ~budget:25 dx batch;
  Helpers.check_int "one copy each" 25 (Plookup_metrics.Storage.measured cluster);
  Helpers.check_int "coverage complete" 25 (Plookup_metrics.Coverage.measured cluster)

(* The consistent-hashing churn bound: shrinking the active prefix by
   one slot only remaps entries whose probe walk actually picked the
   flipped slot — an expected y/n fraction — and every other entry
   keeps its owner set byte-identical. *)
let test_remap_fraction_bounded () =
  let n = 64 in
  let y = 2 in
  let dx, _ = make ~seed:5 ~n ~y () in
  let ids = List.init 2000 Fun.id in
  let changed = ref 0 in
  List.iter
    (fun id ->
      let e = Entry.v id in
      let before = Dxhash.owners_for dx ~active:n e in
      let after = Dxhash.owners_for dx ~active:(n - 1) e in
      Alcotest.(check (list int)) "owners_for full = servers_of" (Dxhash.servers_of dx e)
        before;
      if List.mem (n - 1) before then begin
        incr changed;
        (* The surviving owners are untouched; only the flipped slot is
           replaced. *)
        List.iter
          (fun s -> Alcotest.(check bool) "survivor kept" true (List.mem s after))
          (List.filter (fun s -> s <> n - 1) before);
        Alcotest.(check bool) "flipped slot gone" false (List.mem (n - 1) after)
      end
      else Alcotest.(check (list int)) "untouched entry stable" before after)
    ids;
  let fraction = float_of_int !changed /. float_of_int (List.length ids) in
  (* Expected y/n ~ 3.1%; fail only on a gross violation of the bound. *)
  Alcotest.(check bool) "some entries remap" true (!changed > 0);
  Alcotest.(check bool)
    (Printf.sprintf "remap fraction %.3f <= 4y/n" fraction)
    true
    (fraction <= 4. *. float_of_int y /. float_of_int n)

let test_load_skew_bounded () =
  (* Independent per-entry probe walks spread load like uniform hashing:
     peak/mean stays well under a single-point ring's skew. *)
  let n = 100 in
  let dx, _ = make ~seed:3 ~n ~y:1 () in
  let counts = Array.make n 0 in
  for id = 0 to 9999 do
    List.iter (fun s -> counts.(s) <- counts.(s) + 1) (Dxhash.servers_of dx (Entry.v id))
  done;
  let peak = Array.fold_left max 0 counts in
  let mean = 10000. /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "peak/mean %.2f < 2" (float_of_int peak /. mean))
    true
    (float_of_int peak /. mean < 2.)

let test_n1000_smoke () =
  let dx, _ = make ~seed:9 ~n:1000 ~y:2 () in
  let batch = Helpers.entries 2000 in
  Dxhash.place dx batch;
  (match Dxhash.check_invariants dx ~placed:batch with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let r = Dxhash.partial_lookup dx 20 in
  Alcotest.(check bool) "satisfied" true (Lookup_result.satisfied r)

let test_create_validation () =
  let cluster = Cluster.create ~seed:1 ~n:3 () in
  Alcotest.check_raises "y < 1" (Invalid_argument "Dxhash.create: y must be at least 1")
    (fun () -> ignore (Dxhash.create cluster ~y:0))

(* The extension-point proof at test level: DxHash is reachable through
   Service purely via its registration. *)
let test_reachable_through_service () =
  match Service.config_of_string "dxhash-2" with
  | Error e -> Alcotest.fail e
  | Ok config ->
    Alcotest.(check string) "canonical name" "DxHash-2" (Service.config_name config);
    let service, _ = Helpers.placed_service ~n:5 ~h:20 config in
    let r = Service.partial_lookup service 8 in
    Alcotest.(check bool) "satisfied" true (Lookup_result.satisfied r);
    Helpers.close "analytic storage" 40. (Service.analytic_storage config ~n:5 ~h:20)

let () =
  Helpers.run "dxhash"
    [ ( "dxhash",
        [ Alcotest.test_case "servers_of distinct" `Quick test_servers_of_distinct;
          Alcotest.test_case "y clamped to n" `Quick test_y_clamped_to_n;
          Alcotest.test_case "slots power of two" `Quick test_slots_power_of_two;
          Alcotest.test_case "placement matches probe sequence" `Quick
            test_placement_matches_probe_sequence;
          Alcotest.test_case "add/delete maintain" `Quick test_add_delete_maintain;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "partial lookup satisfied" `Quick
            test_partial_lookup_satisfied;
          Alcotest.test_case "budget truncates round-major" `Quick
            test_budget_truncates_round_major;
          Alcotest.test_case "remap fraction bounded" `Quick test_remap_fraction_bounded;
          Alcotest.test_case "load skew bounded" `Quick test_load_skew_bounded;
          Alcotest.test_case "n=1000 smoke" `Quick test_n1000_smoke;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "reachable through service" `Quick
            test_reachable_through_service ] ) ]
