type lifetime = Exponential of float | Zipf_like of float

let exponential rng ~mean =
  if mean <= 0. then invalid_arg "Dist.exponential: mean must be positive";
  (* 1 - u is in (0, 1], so log is finite. *)
  -.mean *. log (1. -. Rng.unit_float rng)

let poisson_interarrival rng ~rate =
  if rate <= 0. then invalid_arg "Dist.poisson_interarrival: rate must be positive";
  exponential rng ~mean:(1. /. rate)

let zipf_like rng ~c =
  if c <= 1. then invalid_arg "Dist.zipf_like: c must exceed 1";
  c ** Rng.unit_float rng

let zipf_like_mean ~c = (c -. 1.) /. log c

let zipf_like_c_for_mean ~mean =
  if mean <= 1. then invalid_arg "Dist.zipf_like_c_for_mean: mean must exceed 1";
  (* (c-1)/ln c is increasing in c for c > 1, so bisection converges. *)
  let rec grow hi = if zipf_like_mean ~c:hi < mean then grow (hi *. 2.) else hi in
  let hi = grow 2. in
  let rec bisect lo hi n =
    if n = 0 then (lo +. hi) /. 2.
    else
      let mid = (lo +. hi) /. 2. in
      if zipf_like_mean ~c:mid < mean then bisect mid hi (n - 1) else bisect lo mid (n - 1)
  in
  bisect 1.000001 hi 200

let lifetime_of_mean ~tail_heavy ~mean =
  if tail_heavy then Zipf_like (zipf_like_c_for_mean ~mean) else Exponential mean

let draw_lifetime rng = function
  | Exponential mean -> exponential rng ~mean
  | Zipf_like c -> zipf_like rng ~c

let lifetime_mean = function
  | Exponential mean -> mean
  | Zipf_like c -> zipf_like_mean ~c

let zipf_ranks rng ~n ~alpha =
  if n <= 0 then invalid_arg "Dist.zipf_ranks: n must be positive";
  (* Inverse-CDF over the normalized discrete law; n is small in our
     examples so a linear scan is fine. *)
  let weights = Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** alpha)) in
  let total = Array.fold_left ( +. ) 0. weights in
  let u = Rng.unit_float rng *. total in
  let rec find i acc =
    if i = n - 1 then n
    else
      let acc = acc +. weights.(i) in
      if u < acc then i + 1 else find (i + 1) acc
  in
  find 0 0.

let uniform_in rng ~lo ~hi =
  if lo > hi then invalid_arg "Dist.uniform_in: lo > hi";
  lo +. Rng.float rng (hi -. lo)
