(** Client lookup cost (Section 4.2): the expected number of servers a
    client contacts per lookup, measured with no server failures. *)

type measurement = {
  mean_cost : float;  (** average servers contacted *)
  ci95 : float;  (** 95% confidence half-width over the lookups *)
  failure_rate : float;
      (** fraction of lookups returning fewer than [t] distinct entries
          (0 whenever coverage is at least the target) *)
}

val measure : Plookup.Service.t -> t:int -> lookups:int -> measurement
(** Run [lookups] independent partial lookups with target [t] against
    the service as placed, and average. *)

val measure_over_instances :
  ?seed:int ->
  ?obs:Plookup_obs.Obs.t ->
  ?shards:int ->
  n:int ->
  entries:int ->
  config:Plookup.Service.config ->
  t:int ->
  runs:int ->
  lookups_per_run:int ->
  unit ->
  measurement
(** The paper's protocol for Fig. 4: for each of [runs] independent
    placements of [entries] entries on [n] servers, run
    [lookups_per_run] lookups; aggregate over everything.  Each run
    re-places with a fresh generator split from [seed].

    [shards] spreads the instances over that many workers
    ({!Plookup_util.Pool.map}).  The decomposition is by instance with
    pre-drawn seeds and in-order raw-sample replay, so the measurement
    (and the metrics merged into [obs]) is byte-identical at any
    [shards] value — same contract as every other parallel knob in the
    repo (DESIGN.md, "Parallelism").  The other [*_over_instances]
    metrics take the same option with the same guarantee. *)
