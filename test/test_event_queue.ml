open Plookup_sim

let test_empty () =
  let q = Event_queue.create () in
  Helpers.check_int "length" 0 (Event_queue.length q);
  Alcotest.(check bool) "is_empty" true (Event_queue.is_empty q);
  Alcotest.(check bool) "pop none" true (Event_queue.pop q = None);
  Alcotest.(check bool) "peek none" true (Event_queue.peek q = None)

let test_ordering () =
  let q = Event_queue.create () in
  List.iter (fun (t, v) -> Event_queue.push q ~time:t v)
    [ (3., "c"); (1., "a"); (2., "b"); (0.5, "z") ];
  let order = List.map snd (Event_queue.drain q) in
  Alcotest.(check (list string)) "sorted by time" [ "z"; "a"; "b"; "c" ] order

let test_fifo_ties () =
  let q = Event_queue.create () in
  List.iter (fun v -> Event_queue.push q ~time:5. v) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "ties in insertion order" [ 1; 2; 3; 4; 5 ]
    (List.map snd (Event_queue.drain q))

let test_peek_does_not_remove () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:1. "x";
  Alcotest.(check bool) "peek" true (Event_queue.peek q = Some (1., "x"));
  Helpers.check_int "still there" 1 (Event_queue.length q)

let test_interleaved_push_pop () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:10. "late";
  Event_queue.push q ~time:1. "early";
  Alcotest.(check bool) "pop early" true (Event_queue.pop q = Some (1., "early"));
  Event_queue.push q ~time:5. "middle";
  Alcotest.(check bool) "pop middle" true (Event_queue.pop q = Some (5., "middle"));
  Alcotest.(check bool) "pop late" true (Event_queue.pop q = Some (10., "late"))

let test_clear () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:1. 1;
  Event_queue.clear q;
  Alcotest.(check bool) "cleared" true (Event_queue.is_empty q)

let test_grows () =
  let q = Event_queue.create () in
  for i = 999 downto 0 do
    Event_queue.push q ~time:(float_of_int i) i
  done;
  Helpers.check_int "length" 1000 (Event_queue.length q);
  Alcotest.(check (list int)) "drains in order" (List.init 1000 Fun.id)
    (List.map snd (Event_queue.drain q))

let prop_drain_sorted =
  Helpers.qcheck ~count:300 "drain yields non-decreasing times"
    QCheck2.Gen.(list (float_range 0. 1000.))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t ()) times;
      let drained = List.map fst (Event_queue.drain q) in
      drained = List.sort compare times)

let prop_stable_for_equal_times =
  Helpers.qcheck "equal times preserve insertion order"
    QCheck2.Gen.(list_size (int_range 0 50) (int_range 0 3))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i t -> Event_queue.push q ~time:(float_of_int t) i) times;
      let drained = Event_queue.drain q in
      (* For every pair with equal time, sequence must be increasing. *)
      let rec check = function
        | (t1, i1) :: ((t2, i2) :: _ as rest) ->
          (t1 < t2 || (t1 = t2 && i1 < i2)) && check rest
        | _ -> true
      in
      check drained)

let () =
  Helpers.run "event_queue"
    [ ( "event_queue",
        [ Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
          Alcotest.test_case "peek" `Quick test_peek_does_not_remove;
          Alcotest.test_case "interleaved" `Quick test_interleaved_push_pop;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "grows" `Quick test_grows;
          prop_drain_sorted;
          prop_stable_for_equal_times ] ) ]
