open Plookup_util

type event = { time : float; server : int; up : bool }

let generate rng ~n ~mttf ~mttr ~horizon =
  if n <= 0 then invalid_arg "Churn.generate: n must be positive";
  if mttf <= 0. || mttr <= 0. then invalid_arg "Churn.generate: mttf/mttr must be positive";
  if horizon < 0. then invalid_arg "Churn.generate: negative horizon";
  let events = ref [] in
  for server = 0 to n - 1 do
    let clock = ref 0. in
    let up = ref true in
    let continue = ref true in
    while !continue do
      let mean = if !up then mttf else mttr in
      clock := !clock +. Dist.exponential rng ~mean;
      if !clock > horizon then continue := false
      else begin
        up := not !up;
        events := { time = !clock; server; up = !up } :: !events
      end
    done
  done;
  List.stable_sort (fun a b -> Float.compare a.time b.time) !events

let expected_availability ~mttf ~mttr = mttf /. (mttf +. mttr)

let drive engine ~apply events =
  List.iter
    (fun event ->
      ignore
        (Plookup_sim.Engine.schedule_at engine ~time:event.time (fun _ -> apply event)))
    events
