(** Shared experiment context: a master seed and a scale knob.

    The paper's data points average 5000 runs of up to 5000 lookups —
    minutes of CPU per figure.  Defaults here are sized for seconds per
    figure; [scale] multiplies every run/lookup count so the CLI can
    crank any experiment back up to paper scale (see EXPERIMENTS.md). *)

type t = { seed : int; scale : float }

val default : t
(** seed 42, scale 1.0 *)

val v : ?seed:int -> ?scale:float -> unit -> t

val scaled : t -> int -> int
(** [scaled ctx base] is [base * scale], at least 1. *)

val run_seed : t -> int -> int
(** A per-run seed derived from the master seed and a run index —
    stable across scales, so adding runs refines rather than reshuffles
    the sample. *)
