(** Conservative time-window sharding of a simulation across engines.

    A [Shard.t] partitions one logical simulation into [shards]
    independent {!Engine} instances and advances them in lockstep
    windows of width [lookahead] — the classic conservative parallel
    discrete-event scheme: if every cross-shard interaction takes at
    least [lookahead] simulated time to arrive, then within a window
    [\[w, w + lookahead)] no shard can affect another, so all shards may
    execute their local events for the window in parallel.  At the end
    of the window every shard hits a barrier, buffered cross-shard
    messages are injected into their destination engines, and the next
    window starts.

    Determinism contract (see DESIGN.md, "Parallelism"): the outcome of
    {!run} is a pure function of the initial state and the message
    streams — it does not depend on how many OS-level workers execute
    the shards.  Two properties deliver this:

    {ul
    {- {e State ownership}: shard [s]'s engine, and any user state keyed
       to shard [s], are touched only by the worker executing shard [s]
       during a window, and shards are assigned to gang workers by a
       fixed stride, so ownership is stable across windows.}
    {- {e Deterministic injection}: cross-shard sends are buffered in
       per-[(src, dst)] outboxes (each written by exactly one shard) and
       injected after the barrier by the calling domain in ascending
       [(dst, src, buffer-order)] order — a total order independent of
       execution interleaving.}}

    The barrier provides the happens-before edges: outbox writes by a
    worker during the window are visible to the caller after
    [Gang.run] returns. *)

type 'msg t

val create : shards:int -> lookahead:float -> unit -> 'msg t
(** [create ~shards ~lookahead ()] builds a sharded driver with
    [shards] fresh engines.  [lookahead] must be strictly positive: it
    is both the window width and the minimum simulated-time distance of
    any cross-shard send (the minimum cross-shard link latency in the
    network being modelled).  Raises [Invalid_argument] on [shards < 1]
    or [lookahead <= 0]. *)

val shards : _ t -> int
val lookahead : _ t -> float

val engine : _ t -> int -> Engine.t
(** [engine t s] is shard [s]'s engine — use it to schedule shard-local
    setup events before {!run} and shard-local events from handlers
    during it. *)

val set_receiver : 'msg t -> int -> (Engine.t -> time:float -> 'msg -> unit) -> unit
(** [set_receiver t dst f] installs the injection handler for shard
    [dst]: at each barrier, every buffered message addressed to [dst] is
    handed to [f engine ~time msg] on the calling domain, with the
    destination engine's clock already at the barrier time (so
    [Engine.schedule_at engine ~time] is always legal).  Must be set for
    every shard that receives messages before the first send to it. *)

val send : 'msg t -> src:int -> dst:int -> time:float -> 'msg -> unit
(** [send t ~src ~dst ~time msg] buffers [msg] for injection into shard
    [dst] at the next barrier, to take effect at absolute simulated time
    [time].  [src] names the sending shard — during {!run} it must be
    the shard whose event handler is executing (handlers know their own
    shard index; passing another shard's index is a data race).  Before
    {!run} any [src] is fine (the coordinating domain owns everything).
    [time] must be at or past the current window's end, i.e. at least
    [lookahead] after any event in the window — the conservative
    guarantee; violations raise [Invalid_argument], as does a [dst]
    with no receiver installed.  Sends to the sending shard itself are
    allowed and follow the same buffered path. *)

val run : ?gang:Plookup_util.Pool.Gang.t -> until:float -> 'msg t -> int
(** [run ?gang ~until t] advances all shards to time [until] in
    lookahead windows and returns the total number of events fired.
    With [gang], each window's shard executions are distributed over the
    gang's workers (shard [s] on worker [s mod size]); without it they
    run sequentially in the calling domain — byte-identically, at any
    gang size.  Events scheduled strictly after [until] (including
    buffered sends arriving past it) remain pending, mirroring
    [Engine.run ~until]; every engine's clock ends at [until].

    The same gang may be shared across consecutive [run] calls and
    across [Shard.t] values, but a single [Shard.t] must keep the same
    worker count for its whole life — the stride assignment is part of
    the determinism contract only in the sense of data-race freedom;
    results are identical at any size. *)

val pending : _ t -> int
(** Events pending across all shard engines plus buffered, not yet
    injected cross-shard messages. *)
