type sender = Client | Server of int

type ('msg, 'reply) t = {
  n : int;
  mutable handler : (int -> sender -> 'msg -> 'reply) option;
  up : bool array;
  received : int array;
  mutable dropped : int;
  mutable broadcast_count : int;
  mutable client_count : int;
  mutable engine : (Plookup_sim.Engine.t * (src:sender -> dst:int -> float)) option;
  mutable status_listener : (int -> up:bool -> unit) option;
}

let create ~n =
  if n <= 0 then invalid_arg "Net.create: n must be positive";
  { n;
    handler = None;
    up = Array.make n true;
    received = Array.make n 0;
    dropped = 0;
    broadcast_count = 0;
    client_count = 0;
    engine = None;
    status_listener = None }

let n t = t.n

let set_handler t h = t.handler <- Some h

let wrap_handler t wrap =
  match t.handler with
  | None -> invalid_arg "Net.wrap_handler: no handler installed"
  | Some inner -> t.handler <- Some (wrap inner)

let check_node t i =
  if i < 0 || i >= t.n then invalid_arg "Net: server index out of range"

let notify_status t i up =
  match t.status_listener with Some f -> f i ~up | None -> ()

let fail t i =
  check_node t i;
  if t.up.(i) then begin
    t.up.(i) <- false;
    notify_status t i false
  end

let recover t i =
  check_node t i;
  if not t.up.(i) then begin
    t.up.(i) <- true;
    notify_status t i true
  end

let set_status_listener t f = t.status_listener <- Some f

let is_up t i =
  check_node t i;
  t.up.(i)

let up_servers t =
  List.filter (fun i -> t.up.(i)) (List.init t.n Fun.id)

let fail_exactly t down =
  for i = 0 to t.n - 1 do
    recover t i
  done;
  List.iter (fail t) down

let handler_exn t =
  match t.handler with
  | Some h -> h
  | None -> invalid_arg "Net: no handler installed"

let account t ~src ~dst =
  t.received.(dst) <- t.received.(dst) + 1;
  match src with Client -> t.client_count <- t.client_count + 1 | Server _ -> ()

let send t ~src ~dst msg =
  check_node t dst;
  if not t.up.(dst) then begin
    t.dropped <- t.dropped + 1;
    None
  end
  else begin
    account t ~src ~dst;
    Some ((handler_exn t) dst src msg)
  end

let broadcast t ~src msg =
  t.broadcast_count <- t.broadcast_count + 1;
  let h = handler_exn t in
  let replies = ref [] in
  for dst = t.n - 1 downto 0 do
    if t.up.(dst) then begin
      account t ~src ~dst;
      replies := (dst, h dst src msg) :: !replies
    end
    else t.dropped <- t.dropped + 1
  done;
  !replies

let messages_received t = Array.fold_left ( + ) 0 t.received

let messages_received_by t i =
  check_node t i;
  t.received.(i)

let messages_dropped t = t.dropped
let broadcasts t = t.broadcast_count
let client_requests t = t.client_count

let reset_counters t =
  Array.fill t.received 0 t.n 0;
  t.dropped <- 0;
  t.broadcast_count <- 0;
  t.client_count <- 0

let attach_engine t engine ~latency = t.engine <- Some (engine, latency)

let post t ~src ~dst msg =
  check_node t dst;
  match t.engine with
  | None -> ignore (send t ~src ~dst msg)
  | Some (engine, latency) ->
    let delay = latency ~src ~dst in
    ignore
      (Plookup_sim.Engine.schedule_after engine ~delay (fun _ ->
           ignore (send t ~src ~dst msg)))

let call_async t engine ~latency ~src ~dst msg k =
  check_node t dst;
  let request_delay = latency ~src ~dst in
  ignore
    (Plookup_sim.Engine.schedule_after engine ~delay:request_delay (fun engine ->
         match send t ~src ~dst msg with
         | None -> () (* lost: dst was down at delivery time *)
         | Some reply ->
           let reply_delay = latency ~src ~dst in
           ignore
             (Plookup_sim.Engine.schedule_after engine ~delay:reply_delay (fun _ ->
                  k reply))))

let pp_sender ppf = function
  | Client -> Format.pp_print_string ppf "client"
  | Server i -> Format.fprintf ppf "server %d" i
