open Plookup_util

let test_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_distinct_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_copy_independent () =
  let a = Rng.create 9 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b);
  (* Now advance only [a]; [b] must not follow. *)
  let va = Rng.bits64 a in
  let _ = Rng.bits64 a in
  let vb = Rng.bits64 b in
  Alcotest.(check int64) "copy is a snapshot" va vb

let test_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let xs = List.init 32 (fun _ -> Rng.int a 1000) in
  let ys = List.init 32 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_int_bounds () =
  let rng = Rng.create 17 in
  for bound = 1 to 40 do
    for _ = 1 to 200 do
      let v = Rng.int rng bound in
      if v < 0 || v >= bound then Alcotest.failf "Rng.int %d produced %d" bound v
    done
  done

let test_int_rejects_nonpositive () =
  let rng = Rng.create 0 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_in_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 500 do
    let v = Rng.int_in_range rng ~lo:(-5) ~hi:5 in
    if v < -5 || v > 5 then Alcotest.failf "out of range: %d" v
  done;
  Alcotest.check_raises "lo > hi" (Invalid_argument "Rng.int_in_range: lo > hi") (fun () ->
      ignore (Rng.int_in_range rng ~lo:2 ~hi:1))

let test_int_uniformity () =
  (* Chi-square-ish sanity: 10 buckets, 20000 draws; each bucket within
     25% of the expectation. *)
  let rng = Rng.create 99 in
  let buckets = Array.make 10 0 in
  let draws = 20000 in
  for _ = 1 to draws do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = draws / 10 in
      if abs (c - expected) > expected / 4 then
        Alcotest.failf "bucket %d badly skewed: %d vs %d" i c expected)
    buckets

let test_unit_float_range () =
  let rng = Rng.create 31 in
  for _ = 1 to 2000 do
    let v = Rng.unit_float rng in
    if v < 0. || v >= 1. then Alcotest.failf "unit_float out of range: %f" v
  done

let test_unit_float_mean () =
  let rng = Rng.create 77 in
  let acc = Stats.Accum.create () in
  for _ = 1 to 50_000 do
    Stats.Accum.add acc (Rng.unit_float rng)
  done;
  Helpers.roughly ~rel:0.02 "mean ~ 0.5" 0.5 (Stats.Accum.mean acc)

let test_bernoulli () =
  let rng = Rng.create 13 in
  let hits = ref 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  Helpers.roughly ~rel:0.05 "bernoulli 0.3" 0.3 (float_of_int !hits /. float_of_int draws)

let test_pick () =
  let rng = Rng.create 2 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Rng.pick rng arr in
    if not (Array.exists (( = ) v) arr) then Alcotest.failf "pick returned %d" v
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick rng [||]))

let test_pick_list () =
  let rng = Rng.create 2 in
  Helpers.check_int "singleton" 7 (Rng.pick_list rng [ 7 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick_list: empty list") (fun () ->
      ignore (Rng.pick_list rng []))

let test_pick_list_draw_semantics () =
  (* pick_list is single-pass now, but its draw contract is unchanged:
     one [int rng (length l)] draw, returning the element List.nth
     names.  A copied generator replays the draw against the reference
     formulation, so any change to the consumed sequence fails here. *)
  let rng = Rng.create 9 in
  let l = List.init 17 (fun i -> (i * 37) mod 100) in
  for _ = 1 to 200 do
    let reference = Rng.copy rng in
    let expected = List.nth l (Rng.int reference (List.length l)) in
    Helpers.check_int "same draw, same element" expected (Rng.pick_list rng l);
    (* Both generators must have advanced identically. *)
    Helpers.check_int "state in lockstep" (Rng.int reference 1_000_000)
      (Rng.int rng 1_000_000)
  done

let test_shuffle_is_permutation () =
  let rng = Rng.create 21 in
  let original = List.init 50 Fun.id in
  let shuffled = Rng.shuffle rng original in
  Alcotest.(check (list int)) "same multiset" original (List.sort compare shuffled)

let test_shuffle_uniform_first () =
  (* The first element after shuffling [0..4] should be ~uniform. *)
  let rng = Rng.create 4 in
  let counts = Array.make 5 0 in
  let draws = 10_000 in
  for _ = 1 to draws do
    match Rng.shuffle rng [ 0; 1; 2; 3; 4 ] with
    | first :: _ -> counts.(first) <- counts.(first) + 1
    | [] -> assert false
  done;
  Array.iteri
    (fun i c ->
      if abs (c - 2000) > 300 then Alcotest.failf "first element %d skewed: %d" i c)
    counts

let test_sample_indices () =
  let rng = Rng.create 8 in
  for _ = 1 to 200 do
    let k = Rng.int rng 10 in
    let idx = Rng.sample_indices rng ~n:10 ~k in
    Helpers.check_int "length" k (Array.length idx);
    let sorted = Array.copy idx in
    Array.sort compare sorted;
    let distinct = Array.to_list sorted |> List.sort_uniq compare in
    Helpers.check_int "distinct" k (List.length distinct);
    Array.iter (fun i -> if i < 0 || i >= 10 then Alcotest.failf "index %d" i) idx
  done;
  Alcotest.check_raises "k > n"
    (Invalid_argument "Rng.sample_indices: need 0 <= k <= n") (fun () ->
      ignore (Rng.sample_indices rng ~n:3 ~k:4))

let test_sample_indices_into () =
  (* The preallocated variant must consume exactly the same draws and
     produce exactly the same sample as the allocating one. *)
  let a = Rng.create 8 and b = Rng.create 8 in
  let scratch = Array.make 10 0 in
  for _ = 1 to 200 do
    let k = Rng.int a 10 in
    ignore (Rng.int b 10);
    let expected = Rng.sample_indices a ~n:10 ~k in
    Rng.sample_indices_into b scratch ~n:10 ~k;
    Alcotest.(check (array int)) "same sample" expected (Array.sub scratch 0 k)
  done;
  Alcotest.check_raises "scratch too small"
    (Invalid_argument "Rng.sample_indices_into: scratch shorter than n") (fun () ->
      ignore (Rng.sample_indices_into a (Array.make 3 0) ~n:5 ~k:2))

let test_digest_string () =
  (* Deterministic, and sensitive to every byte: two long keys that
     differ only in the last character must not collide (the regression
     that motivated replacing Hashtbl.hash in Directory). *)
  Alcotest.(check int64) "stable" (Rng.digest_string "abc") (Rng.digest_string "abc");
  let prefix = String.make 400 'k' in
  let digests = List.init 16 (fun i -> Rng.digest_string (prefix ^ string_of_int i)) in
  Helpers.check_int "all distinct" 16 (List.length (List.sort_uniq compare digests));
  Alcotest.(check bool) "last byte matters" false
    (Rng.digest_string (prefix ^ "a") = Rng.digest_string (prefix ^ "b"));
  Alcotest.(check bool) "empty vs nonempty" false
    (Rng.digest_string "" = Rng.digest_string "\000")

let test_sample_uniform () =
  (* Each of 5 elements should appear in a 2-of-5 sample with probability
     2/5. *)
  let rng = Rng.create 12 in
  let counts = Array.make 5 0 in
  let draws = 10_000 in
  for _ = 1 to draws do
    Array.iter (fun v -> counts.(v) <- counts.(v) + 1)
      (Rng.sample rng [| 0; 1; 2; 3; 4 |] 2)
  done;
  Array.iteri
    (fun i c ->
      Helpers.roughly ~rel:0.08 (Printf.sprintf "element %d" i) 0.4
        (float_of_int c /. float_of_int draws))
    counts

let test_perm () =
  let rng = Rng.create 5 in
  let p = Rng.perm rng 20 in
  Alcotest.(check (list int)) "permutation of 0..19" (List.init 20 Fun.id)
    (List.sort compare (Array.to_list p))

let test_hash_in_range () =
  let v1 = Rng.hash_in_range ~seed:1 ~salt:1 ~value:42 10 in
  let v2 = Rng.hash_in_range ~seed:1 ~salt:1 ~value:42 10 in
  Helpers.check_int "deterministic" v1 v2;
  for value = 0 to 500 do
    let v = Rng.hash_in_range ~seed:3 ~salt:2 ~value 7 in
    if v < 0 || v >= 7 then Alcotest.failf "hash out of range: %d" v
  done

let test_hash_in_range_spread () =
  (* Different salts should decorrelate: over 1000 values, the two hash
     functions agree about 1/n of the time. *)
  let n = 10 in
  let agree = ref 0 in
  for value = 0 to 999 do
    if
      Rng.hash_in_range ~seed:5 ~salt:1 ~value n
      = Rng.hash_in_range ~seed:5 ~salt:2 ~value n
    then incr agree
  done;
  Helpers.roughly ~rel:0.5 "salt independence" 100. (float_of_int !agree)

let prop_int_in_bounds =
  Helpers.qcheck "int always in [0, bound)"
    QCheck2.Gen.(pair (int_range 1 10_000) int)
    (fun (bound, seed) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_shuffle_permutation =
  Helpers.qcheck "shuffle preserves multiset"
    QCheck2.Gen.(pair (list small_int) int)
    (fun (l, seed) ->
      let rng = Rng.create seed in
      List.sort compare (Rng.shuffle rng l) = List.sort compare l)

let prop_sample_subset =
  Helpers.qcheck "sample is a sub-multiset of distinct slots"
    QCheck2.Gen.(pair (int_range 0 50) int)
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let arr = Array.init n (fun i -> i * 3) in
      let k = if n = 0 then 0 else Rng.int rng (n + 1) in
      let s = Rng.sample rng arr k in
      Array.length s = k
      && Array.for_all (fun v -> Array.exists (( = ) v) arr) s
      && List.length (List.sort_uniq compare (Array.to_list s)) = k)

let () =
  Helpers.run "rng"
    [ ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "distinct seeds" `Quick test_distinct_seeds;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split" `Quick test_split_independent;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int rejects 0" `Quick test_int_rejects_nonpositive;
          Alcotest.test_case "int_in_range" `Quick test_int_in_range;
          Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
          Alcotest.test_case "unit_float range" `Quick test_unit_float_range;
          Alcotest.test_case "unit_float mean" `Quick test_unit_float_mean;
          Alcotest.test_case "bernoulli" `Quick test_bernoulli;
          Alcotest.test_case "pick" `Quick test_pick;
          Alcotest.test_case "pick_list" `Quick test_pick_list;
          Alcotest.test_case "pick_list draw semantics" `Quick
            test_pick_list_draw_semantics;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "shuffle uniform" `Quick test_shuffle_uniform_first;
          Alcotest.test_case "sample_indices" `Quick test_sample_indices;
          Alcotest.test_case "sample_indices_into" `Quick test_sample_indices_into;
          Alcotest.test_case "digest_string" `Quick test_digest_string;
          Alcotest.test_case "sample uniform" `Quick test_sample_uniform;
          Alcotest.test_case "perm" `Quick test_perm;
          Alcotest.test_case "hash_in_range" `Quick test_hash_in_range;
          Alcotest.test_case "hash salt spread" `Quick test_hash_in_range_spread;
          prop_int_in_bounds;
          prop_shuffle_permutation;
          prop_sample_subset ] ) ]
