(** Running statistics and the paper's fairness measure.

    Every experiment data point in the paper is a Monte-Carlo average; the
    extended version reports that 95% confidence intervals were always
    below 0.1% of the mean.  {!Accum} provides numerically stable
    (Welford) accumulation so we can report the same intervals. *)

module Accum : sig
  type t
  (** A mutable mean/variance accumulator. *)

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; 0 with fewer than two samples. *)

  val stddev : t -> float
  val ci95_half_width : t -> float
  (** Half-width of the 95% confidence interval of the mean under the
      normal approximation (1.96 * stderr); 0 with fewer than two
      samples. *)

  val merge : t -> t -> t
  (** Combined accumulator, as if all samples were added to one. *)
end

val mean : float array -> float
val variance : float array -> float
val stddev : float array -> float

val coefficient_of_variation : ideal:float -> float array -> float
(** The paper's unfairness formula, Eq. (1): given per-entry empirical
    probabilities [p] and the fair value [ideal] (= t/h),
    [(1/ideal) * sqrt (sum_j (p_j - ideal)^2 / h)].
    Requires [ideal > 0] and a non-empty array. *)

val percentile : float array -> float -> float
(** [percentile xs q] for q in [0,100], by linear interpolation over a
    sorted copy. *)

val min_max : float array -> float * float
