(** Minimal ASCII / CSV table rendering for experiment output.

    Every experiment in [plookup_experiments] produces a [Table.t]; the
    bench harness and the CLI render it either as an aligned ASCII table
    (like the rows the paper reports) or as CSV for plotting. *)

type cell = S of string | I of int | F of float | F4 of float
(** [F] prints with 2 decimals, [F4] with 4 (for small probabilities and
    unfairness coefficients). *)

type t

val create : title:string -> columns:string list -> t
val add_row : t -> cell list -> unit
(** Row length must match the number of columns. *)

val title : t -> string
val columns : t -> string list
val rows : t -> cell list list
val cell_to_string : cell -> string
val to_ascii : t -> string
val to_csv : t -> string
val print : t -> unit
(** [to_ascii] on stdout. *)
