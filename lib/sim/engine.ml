type t = { queue : (t -> unit) Event_queue.t; mutable clock : float }

type event_id = (t -> unit) Event_queue.handle
(* The heap node itself: cancellation flips an intrusive flag instead of
   round-tripping through side hashtables, so the per-event fast path
   (schedule, fire) performs zero hashing and the only allocation is the
   node. *)

let create () = { queue = Event_queue.create (); clock = 0. }

let[@inline always] now t = t.clock

let schedule_at t ~time action =
  if time < t.clock then invalid_arg "Engine.schedule_at: time is in the past";
  Event_queue.push t.queue ~time action

let schedule_after t ~delay action =
  if delay < 0. then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

(* Cancelling an event that already fired (or was already cancelled) is
   a no-op; the queue's live count stays accurate either way. *)
let cancel t id = ignore (Event_queue.cancel_handle t.queue id)

let pending t = Event_queue.length t.queue

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, action) ->
    t.clock <- time;
    action t;
    true

let run ?max_events ?until t =
  let fired = ref 0 in
  let budget_ok () = match max_events with None -> true | Some m -> !fired < m in
  let continue = ref true in
  while !continue && budget_ok () do
    (* [peek] only ever surfaces events that will fire, so comparing the
       horizon against it is exact: a cancelled event's earlier
       timestamp can never let a later live event slip past [until]. *)
    match Event_queue.peek t.queue with
    | None -> continue := false
    | Some (time, _) ->
      (match until with
      | Some horizon when time > horizon ->
        t.clock <- max t.clock horizon;
        continue := false
      | _ -> if step t then incr fired else continue := false)
  done;
  (match (until, Event_queue.peek t.queue) with
  | Some horizon, None -> t.clock <- max t.clock horizon
  | _ -> ());
  !fired

let reset t =
  Event_queue.clear t.queue;
  t.clock <- 0.
