open Plookup
open Plookup_store
open Plookup_util
module Update_gen = Plookup_workload.Update_gen
module Replay = Plookup_workload.Replay
module Net = Plookup_net.Net

let stream_of_events ~initial events =
  let gen = Entry.Gen.create () in
  let initial = List.init initial (fun _ -> Entry.Gen.fresh gen) in
  { Update_gen.initial;
    events =
      List.map
        (fun (time, op) ->
          { Update_gen.time;
            op =
              (match op with
              | `Add id -> Update_gen.Add (Entry.v id)
              | `Delete id -> Update_gen.Delete (Entry.v id)) })
        events;
    gen }

let test_run_applies_events () =
  let stream = stream_of_events ~initial:3 [ (1., `Add 10); (2., `Delete 0) ] in
  let service = Service.create ~seed:1 ~n:2 Service.full_replication in
  Replay.run service stream;
  let store = Cluster.store (Service.cluster service) 0 in
  Alcotest.(check bool) "added" true (Server_store.mem store (Entry.v 10));
  Alcotest.(check bool) "deleted" false (Server_store.mem store (Entry.v 0));
  Helpers.check_int "final size" 3 (Server_store.cardinal store)

let test_on_event_callback () =
  let stream =
    stream_of_events ~initial:1 [ (1., `Add 5); (4., `Add 6); (4.5, `Delete 5) ]
  in
  let service = Service.create ~seed:1 ~n:2 Service.full_replication in
  let points = ref [] in
  Replay.run
    ~on_event:(fun p _ -> points := (p.Replay.index, p.Replay.time, p.Replay.elapsed) :: !points)
    service stream;
  match List.rev !points with
  | [ (1, t1, e1); (2, t2, e2); (3, t3, e3) ] ->
    Helpers.close "t1" 1. t1;
    Helpers.close "e1" 1. e1;
    Helpers.close "t2" 4. t2;
    Helpers.close "e2" 3. e2;
    Helpers.close "t3" 4.5 t3;
    Helpers.close "e3" 0.5 e3
  | _ -> Alcotest.fail "expected three probe points"

let test_run_timed_failure_share () =
  (* Full replication with 2 initial entries; predicate "fewer than 2
     entries".  Timeline: delete at t=1 (drops to 1 -> failing), add at
     t=3 (recovers), last event at t=5.  Failing during [1,3) of [0,5]:
     share 0.4. *)
  let stream =
    stream_of_events ~initial:2 [ (1., `Delete 0); (3., `Add 10); (5., `Add 11) ]
  in
  let service = Service.create ~seed:1 ~n:2 Service.full_replication in
  let failed s =
    Server_store.cardinal (Cluster.store (Service.cluster s) 0) < 2
  in
  Helpers.close "time-weighted share" 0.4 (Replay.run_timed ~service ~stream ~failed)

let test_run_timed_never_failing () =
  let stream = stream_of_events ~initial:2 [ (1., `Add 5); (2., `Add 6) ] in
  let service = Service.create ~seed:1 ~n:2 Service.full_replication in
  Helpers.close "zero share" 0. (Replay.run_timed ~service ~stream ~failed:(fun _ -> false))

let test_run_timed_empty_stream () =
  let stream = stream_of_events ~initial:2 [] in
  let service = Service.create ~seed:1 ~n:2 Service.full_replication in
  Helpers.close "no time elapsed" 0. (Replay.run_timed ~service ~stream ~failed:(fun _ -> true))

let test_messages_excludes_place () =
  let stream = stream_of_events ~initial:10 [ (1., `Add 20); (2., `Delete 0) ] in
  let service = Service.create ~seed:1 ~n:4 Service.full_replication in
  let msgs = Replay.messages_for_updates ~service ~stream in
  (* Full replication: each update costs 1 + n = 5; the place traffic
     (1 + n with a big batch) must not be counted. *)
  Helpers.check_int "2 updates * (1+n)" 10 msgs

let test_messages_fixed_selective () =
  (* Fixed-x with x larger than will ever fill: every add broadcasts,
     deletes of untracked entries cost 1. *)
  let stream = stream_of_events ~initial:2 [ (1., `Add 10); (2., `Delete 99) ] in
  let service = Service.create ~seed:1 ~n:4 (Service.fixed 10) in
  Helpers.check_int "broadcast add + cheap delete" 6
    (Replay.messages_for_updates ~service ~stream)

let test_fig12_style_cushion_comparison () =
  (* End-to-end sanity for the Fig. 12 machinery: zero cushion fails
     noticeably more often than cushion 5. *)
  let share b =
    let stream =
      Update_gen.generate (Rng.create 7)
        { Update_gen.steady_entries = 50; add_period = 10.; tail_heavy = false;
          updates = 4000 }
    in
    let service = Service.create ~seed:7 ~n:5 (Service.fixed (10 + b)) in
    Replay.run_timed ~service ~stream ~failed:(fun s ->
        Server_store.cardinal (Cluster.store (Service.cluster s) 0) < 10)
  in
  let s0 = share 0 and s5 = share 5 in
  Alcotest.(check bool)
    (Printf.sprintf "cushion helps (%.4f vs %.4f)" s0 s5)
    true (s0 > s5)

let () =
  Helpers.run "replay"
    [ ( "replay",
        [ Alcotest.test_case "applies events" `Quick test_run_applies_events;
          Alcotest.test_case "on_event points" `Quick test_on_event_callback;
          Alcotest.test_case "time-weighted share" `Quick test_run_timed_failure_share;
          Alcotest.test_case "never failing" `Quick test_run_timed_never_failing;
          Alcotest.test_case "empty stream" `Quick test_run_timed_empty_stream;
          Alcotest.test_case "excludes place" `Quick test_messages_excludes_place;
          Alcotest.test_case "fixed selective" `Quick test_messages_fixed_selective;
          Alcotest.test_case "fig12 cushion" `Quick test_fig12_style_cushion_comparison ] ) ]
