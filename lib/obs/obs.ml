type t = { metrics : Metrics.t; trace : Trace.t }

let create ?trace_capacity ?trace_sample ?trace_planes () =
  let metrics = Metrics.create () in
  let trace =
    Trace.create ?capacity:trace_capacity ?sample:trace_sample ?planes:trace_planes ()
  in
  (* Mirror ring evictions into the registry so drained JSONL consumers
     can detect truncation from the metrics dump alone. *)
  let evicted = Metrics.counter metrics "obs.trace.evicted" in
  Trace.set_evict_hook trace (fun n -> Metrics.add evicted n);
  { metrics; trace }

let child t =
  let c =
    create ~trace_capacity:(Trace.capacity t.trace) ~trace_sample:(Trace.sample_rate t.trace)
      ?trace_planes:(Trace.plane_filter t.trace) ()
  in
  Trace.set_enabled c.trace (Trace.enabled t.trace);
  c

let merge parent child =
  Metrics.absorb parent.metrics (Metrics.snapshot child.metrics);
  Trace.absorb parent.trace child.trace
