(** Deterministic pseudo-random number generation.

    The whole reproduction is driven by explicit generator values so that
    every experiment is replayable from a single integer seed.  The
    implementation is xoshiro256++ seeded through splitmix64 — fast,
    well-distributed, and independent of the OCaml stdlib [Random] state
    (which we never touch). *)

type t
(** A mutable generator. Not thread-safe; use {!split} to derive
    independent generators for concurrent or per-instance use. *)

val create : int -> t
(** [create seed] makes a generator from a 63-bit seed.  Equal seeds give
    equal streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; both copies then evolve
    independently but identically if used identically. *)

val split : t -> t
(** [split t] draws fresh state from [t] and returns a statistically
    independent generator.  Advances [t]. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be > 0.
    Uses rejection sampling, so the result is exactly uniform. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform in [\[lo, hi\]] inclusive. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)], 53-bit resolution. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on
    an empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list: one traversal, one generator
    draw — the same draw [List.nth l (int t (List.length l))] would
    make, so the two are interchangeable in seeded runs. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val shuffle : t -> 'a list -> 'a list
(** A uniformly shuffled copy of the list. *)

val sample_indices : t -> n:int -> k:int -> int array
(** [sample_indices t ~n ~k] draws [k] distinct indices uniformly from
    [\[0, n)], in random order, via a partial Fisher–Yates.  Requires
    [0 <= k <= n]. *)

val sample_indices_into : t -> int array -> n:int -> k:int -> unit
(** Allocation-free {!sample_indices} for hot paths: re-initializes
    [scratch.(0 .. n-1)] to [0 .. n-1], then performs the same partial
    Fisher–Yates; the sample is left in [scratch.(0 .. k-1)].  Consumes
    exactly the same generator draws as {!sample_indices}, so the two
    are interchangeable without perturbing seeded runs.  Requires
    [0 <= k <= n <= Array.length scratch]. *)

val sample : t -> 'a array -> int -> 'a array
(** [sample t arr k] draws [k] distinct elements of [arr] uniformly,
    without replacement. *)

val perm : t -> int -> int array
(** [perm t n] is a uniform permutation of [\[0, n)]. *)

val mix64 : int64 -> int64
(** The splitmix64 finalizer — a high-quality stateless 64-bit mixer.
    Used to build the Hash-y strategy's hash-function family. *)

val digest_string : string -> int64
(** [digest_string s] is a 64-bit FNV-1a digest of {e every} byte of
    [s], finished with {!mix64}.  Unlike [Hashtbl.hash], which only
    inspects a bounded prefix, distinct long keys sharing a prefix get
    distinct digests; {!Plookup.Directory} derives per-key seeds from
    this. *)

val hash_in_range : seed:int -> salt:int -> value:int -> int -> int
(** [hash_in_range ~seed ~salt ~value n] deterministically maps
    [(seed, salt, value)] to [\[0, n)].  Distinct [salt]s give
    (statistically) independent hash functions, as required for the
    f_1..f_y family of the Hash-y strategy. *)
