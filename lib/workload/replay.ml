module Service = Plookup.Service
module Net = Plookup_net.Net

type probe_point = { index : int; time : float; elapsed : float }

let apply service (ev : Update_gen.event) =
  match ev.op with
  | Update_gen.Add e -> Service.add service e
  | Update_gen.Delete e -> Service.delete service e

let run ?on_event service (stream : Update_gen.stream) =
  let open Update_gen in
  Service.place service stream.initial;
  let previous = ref 0. in
  List.iteri
    (fun i ev ->
      apply service ev;
      (match on_event with
      | None -> ()
      | Some f ->
        f { index = i + 1; time = ev.time; elapsed = ev.time -. !previous } ev);
      previous := ev.time)
    stream.events

let run_timed ~service ~(stream : Update_gen.stream) ~failed =
  Service.place service stream.initial;
  let previous = ref 0. in
  let failed_time = ref 0. in
  let total_time = ref 0. in
  (* The system state is piecewise-constant: the state after event i
     persists over (time_i, time_{i+1}), so weight each state by the
     following interval. *)
  let state_failed = ref (failed service) in
  List.iter
    (fun (ev : Update_gen.event) ->
      let dt = ev.time -. !previous in
      if dt > 0. then begin
        total_time := !total_time +. dt;
        if !state_failed then failed_time := !failed_time +. dt
      end;
      apply service ev;
      state_failed := failed service;
      previous := ev.time)
    stream.events;
  if !total_time = 0. then 0. else !failed_time /. !total_time

let messages_for_updates ~service ~(stream : Update_gen.stream) =
  Service.place service stream.initial;
  let net = Plookup.Cluster.net (Service.cluster service) in
  Net.reset_counters net;
  List.iter (apply service) stream.events;
  Net.messages_received net
