type 'a node = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a node array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let length t = t.size
let is_empty t = t.size = 0

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let capacity = max 16 (2 * Array.length t.heap) in
  if capacity > Array.length t.heap then begin
    let heap = Array.make capacity t.heap.(0) in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end

let push t ~time payload =
  let node = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.heap then
    if t.size = 0 then t.heap <- Array.make 16 node else grow t;
  (* Sift up. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- node;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before node t.heap.(parent) then begin
      t.heap.(!i) <- t.heap.(parent);
      t.heap.(parent) <- node;
      i := parent
    end
    else continue := false
  done

let sift_down t =
  let node = t.heap.(0) in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      t.heap.(!i) <- t.heap.(!smallest);
      t.heap.(!smallest) <- node;
      i := !smallest
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t
    end;
    Some (top.time, top.payload)
  end

let peek t = if t.size = 0 then None else Some (t.heap.(0).time, t.heap.(0).payload)

let clear t =
  t.size <- 0;
  t.heap <- [||]

let drain t =
  let rec go acc = match pop t with None -> List.rev acc | Some e -> go (e :: acc) in
  go []
