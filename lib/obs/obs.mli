(** The observability handle: one {!Metrics} registry plus one {!Trace},
    created together and threaded together.

    A handle is what components accept ([?obs]) and what the experiment
    context carries: {!Plookup_experiments.Ctx} always holds one, each
    {!Plookup.Cluster} instruments itself against the one it is given.
    Per-replicate work gets a {!child} handle (same trace capacity,
    sampling configuration and enablement, fresh state) so parallel
    replicates never contend on shared cells; {!merge} folds children
    back in input order — deterministic at any worker count. *)

type t = { metrics : Metrics.t; trace : Trace.t }

val create : ?trace_capacity:int -> ?trace_sample:float -> ?trace_planes:string list -> unit -> t
(** Fresh registry and trace.  [trace_capacity] bounds the trace's
    retained ring (default 4096); [trace_sample] and [trace_planes]
    configure head-based span sampling (see {!Trace.create}).  The
    trace's ring evictions are mirrored into the registry as the
    [obs.trace.evicted] counter.  Tracing starts disabled; metrics are
    always on. *)

val child : t -> t
(** An empty handle inheriting the parent's trace capacity, sampling
    configuration and enablement — hand one to each replicate, then
    {!merge} it back. *)

val merge : t -> t -> unit
(** [merge parent child] folds the child's metrics snapshot and trace
    spans into the parent ({!Metrics.absorb}, {!Trace.absorb}). *)
