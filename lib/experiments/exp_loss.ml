open Plookup
open Plookup_store
open Plookup_util
module Engine = Plookup_sim.Engine
module Net = Plookup_net.Net

let id = "loss"
let title = "Extension: lookup cost and coverage vs message loss (retrying Async_client)"

(* The Round-Robin client's plan: strided order from a random start,
   extended with the residues the stride cycle misses (see
   Probe.stride). *)
let stride_order rng ~n ~y =
  let y = ((y mod n) + n) mod n in
  let start = Rng.int rng n in
  let visited = Array.make n false in
  let order = ref [] in
  let pos = ref start in
  while not visited.(!pos) do
    visited.(!pos) <- true;
    order := !pos :: !order;
    pos := (!pos + y) mod n
  done;
  List.rev !order @ List.filter (fun i -> not visited.(i)) (List.init n Fun.id)

type tally = {
  satisfied : Stats.Accum.t;
  contacts : Stats.Accum.t;
  attempts : Stats.Accum.t;
  retries : Stats.Accum.t;
  timeouts : Stats.Accum.t;
  latency_ms : Stats.Accum.t;
}

(* One (strategy, loss-rate) cell: a fresh placement, a fault-injected
   network, [lookups] retrying async lookups. *)
let measure ctx ~obs ~n ~h ~t ~lookups ~timeout ~retries ~loss ~config ~order_of () =
  let seed = Ctx.run_seed ctx (Hashtbl.hash (Service.config_name config)) in
  let service = Service.create ~seed ~obs ~n config in
  Service.place service (Entry.Gen.batch (Entry.Gen.create ()) h);
  let cluster = Service.cluster service in
  (* The jitter knob rides on the ambient context (default 0); loss is
     what this experiment sweeps. *)
  Cluster.set_faults cluster ~loss ~duplication:ctx.Ctx.duplication
    ~jitter:ctx.Ctx.jitter ();
  let engine = Engine.create () in
  let latency_rng = Rng.create (seed lxor 0x10552) in
  let latency () = Dist.uniform_in latency_rng ~lo:2.5 ~hi:25. in
  let order_rng = Rng.create (seed lxor 0x0BDE5) in
  let tally =
    { satisfied = Stats.Accum.create ();
      contacts = Stats.Accum.create ();
      attempts = Stats.Accum.create ();
      retries = Stats.Accum.create ();
      timeouts = Stats.Accum.create ();
      latency_ms = Stats.Accum.create () }
  in
  for _ = 1 to lookups do
    let outcome = ref None in
    Async_client.lookup cluster engine ~latency ~timeout ~retries
      ~order:(order_of cluster order_rng) ~t
      (fun o -> outcome := Some o);
    ignore (Engine.run engine);
    match !outcome with
    | None -> ()
    | Some o ->
      Stats.Accum.add tally.satisfied
        (if Lookup_result.satisfied o.Async_client.result then 1. else 0.);
      Stats.Accum.add tally.contacts
        (float_of_int o.Async_client.result.Lookup_result.servers_contacted);
      Stats.Accum.add tally.attempts (float_of_int o.Async_client.attempts);
      Stats.Accum.add tally.retries (float_of_int o.Async_client.retries);
      Stats.Accum.add tally.timeouts (float_of_int o.Async_client.timeouts);
      Stats.Accum.add tally.latency_ms (Async_client.elapsed o)
  done;
  tally

let loss_rates ctx =
  let base = [ 0.; 0.05; 0.1; 0.2 ] in
  List.sort_uniq compare
    (if ctx.Ctx.loss > 0. then ctx.Ctx.loss :: base else base)

let run ?(n = 10) ?(h = 100) ?(budget = 200) ?(t = 35) ?(timeout = 60.) ?(retries = 2) ctx
    =
  let lookups = Ctx.scaled ctx 300 in
  let table =
    Table.create ~title
      ~columns:
        [ "strategy"; "loss %"; "satisfied %"; "mean contacts"; "mean attempts";
          "retries/lookup"; "timeouts/lookup"; "mean latency ms" ]
  in
  let x =
    Option.value ~default:(t + 5)
      (Service.param (Service.storage_for_budget (Service.fixed 1) ~n ~h ~total:budget))
  in
  let y =
    Option.value ~default:1
      (Service.param (Service.storage_for_budget (Service.round_robin 1) ~n ~h ~total:budget))
  in
  let random_order cluster rng =
    ignore cluster;
    Array.to_list (Rng.perm rng n)
  in
  let stride cluster rng =
    ignore cluster;
    stride_order rng ~n ~y
  in
  (* Fixed-x must hold at least t entries per server to satisfy alone. *)
  let configs =
    [ (Service.fixed (max x (t + 5)), random_order); (Service.round_robin y, stride) ]
  in
  (* One parallel unit per (strategy, loss rate) cell; each cell's seed
     derives from the strategy name alone, so cells are
     order-independent. *)
  let cells =
    Array.of_list
      (List.concat_map
         (fun (config, order_of) ->
           List.map (fun loss -> (config, order_of, loss)) (loss_rates ctx))
         configs)
  in
  let measured =
    Runner.map_obs ctx ~count:(Array.length cells) (fun i ~obs ->
        let config, order_of, loss = cells.(i) in
        ( config, loss,
          measure ctx ~obs ~n ~h ~t ~lookups ~timeout ~retries ~loss ~config ~order_of () ))
  in
  Array.iter
    (fun (config, loss, tally) ->
      Table.add_row table
        [ Table.S (Service.config_name config);
          Table.F (100. *. loss);
          Table.F (100. *. Stats.Accum.mean tally.satisfied);
          Table.F (Stats.Accum.mean tally.contacts);
          Table.F (Stats.Accum.mean tally.attempts);
          Table.F4 (Stats.Accum.mean tally.retries);
          Table.F4 (Stats.Accum.mean tally.timeouts);
          Table.F (Stats.Accum.mean tally.latency_ms) ])
    measured;
  table
